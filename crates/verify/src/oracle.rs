//! Differential oracles: the incremental engine compared against
//! from-scratch ground truth.
//!
//! The paper's whole speedup rests on incremental rerouting and retiming
//! staying equivalent to full re-evaluation, so each oracle here re-derives
//! one slice of state the slow way and compares:
//!
//! * **state vs rebuild** — occupancy and queue bookkeeping re-derived from
//!   the per-net routes (export → restore), and a from-scratch static
//!   timing analysis, compared to the incrementally tracked values to ULP
//!   tolerance;
//! * **rollback identity** — apply-then-undo leaves a bit-identical state
//!   digest;
//! * **checkpoint round trip** — serialize → parse → restore reproduces the
//!   layout exactly;
//! * **K-replica determinism** — parallel annealing is deterministic in
//!   (seed, K), and K = 1 is bit-identical to the sequential engine.

use std::fmt;

use rowfpga_anneal::{anneal_parallel, AnnealConfig, AnnealCursor, AnnealProblem, ParallelConfig};
use rowfpga_arch::Architecture;
use rowfpga_core::{
    arch_fingerprint, netlist_fingerprint, Checkpoint, CostConfig, LayoutProblem, WriteFault,
    CHECKPOINT_VERSION,
};
use rowfpga_netlist::Netlist;
use rowfpga_place::{Move, MoveWeights, Placement};
use rowfpga_route::{NetRouteSnapshot, RouterConfig, RoutingState};
use rowfpga_timing::TimingState;

/// A divergence found by one of the differential oracles.
#[derive(Clone, Debug, PartialEq)]
pub struct OracleFailure {
    /// Which oracle tripped.
    pub oracle: &'static str,
    /// What diverged.
    pub detail: String,
}

impl OracleFailure {
    pub(crate) fn new(oracle: &'static str, detail: String) -> OracleFailure {
        OracleFailure { oracle, detail }
    }
}

impl fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oracle '{}' diverged: {}", self.oracle, self.detail)
    }
}

impl std::error::Error for OracleFailure {}

/// Units-in-the-last-place distance between two doubles (`u64::MAX` when
/// either is NaN). Equal values (including `+0.0`/`-0.0`) report 0.
pub fn ulp_distance(a: f64, b: f64) -> u64 {
    if a == b {
        return 0;
    }
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    // Map the IEEE-754 bit patterns onto a monotone integer line.
    fn key(x: f64) -> i128 {
        let bits = x.to_bits() as i64;
        let k = if bits < 0 { i64::MIN - bits } else { bits };
        k as i128
    }
    key(a).abs_diff(key(b)).min(u64::MAX as u128) as u64
}

/// Tolerance for comparing incrementally tracked delays against a
/// from-scratch analysis. The incremental STA recomputes affected cells
/// through the same code path as the full analysis, so agreement is
/// expected to the last bit; a tiny ULP budget absorbs any benign
/// fold-order drift without masking real divergence (injected timing
/// faults are ≥ 0.1 ps, about 10 orders of magnitude above this).
pub const TIMING_ULPS: u64 = 64;

fn ulp_close(a: f64, b: f64) -> bool {
    ulp_distance(a, b) <= TIMING_ULPS
}

/// A full bit-level digest of an evolving layout: everything a move could
/// touch. Two digests compare equal iff placement, routing occupancy,
/// per-net routes and tracked timing are identical (delays compared by
/// bits, not tolerance — this is for *identity* checks like rollback).
#[derive(Clone, Debug, PartialEq)]
pub struct StateDigest {
    sites: Vec<usize>,
    pinmaps: Vec<u16>,
    routes: Vec<NetRouteSnapshot>,
    occupancy: u64,
    globally_unrouted: usize,
    incomplete: usize,
    worst_bits: u64,
    arrival_bits: Vec<u64>,
}

impl StateDigest {
    /// Captures the digest of a live problem.
    pub fn of(problem: &LayoutProblem) -> StateDigest {
        StateDigest {
            sites: problem.placement().export_sites(),
            pinmaps: problem.placement().export_pinmaps(),
            routes: problem.routing().export_routes(),
            occupancy: problem.routing().occupancy_digest(),
            globally_unrouted: problem.routing().globally_unrouted(),
            incomplete: problem.routing().incomplete(),
            worst_bits: problem.timing().worst().to_bits(),
            arrival_bits: problem
                .timing()
                .arrivals()
                .iter()
                .map(|a| a.to_bits())
                .collect(),
        }
    }

    /// Captures the digest of a finished layout (placement + routing +
    /// a from-scratch timing analysis), for comparing engine runs.
    pub fn of_layout(
        arch: &Architecture,
        netlist: &Netlist,
        placement: &Placement,
        routing: &RoutingState,
    ) -> StateDigest {
        let timing = TimingState::new(arch, netlist, placement, routing)
            .expect("a produced layout is always levelizable");
        StateDigest {
            sites: placement.export_sites(),
            pinmaps: placement.export_pinmaps(),
            routes: routing.export_routes(),
            occupancy: routing.occupancy_digest(),
            globally_unrouted: routing.globally_unrouted(),
            incomplete: routing.incomplete(),
            worst_bits: timing.worst().to_bits(),
            arrival_bits: timing.arrivals().iter().map(|a| a.to_bits()).collect(),
        }
    }

    /// Describes the first differing component between two digests.
    pub fn diff(&self, other: &StateDigest) -> Option<String> {
        if self.sites != other.sites {
            return Some("cell→site assignment differs".into());
        }
        if self.pinmaps != other.pinmaps {
            return Some("pinmap choices differ".into());
        }
        if self.routes != other.routes {
            let net = self
                .routes
                .iter()
                .zip(&other.routes)
                .position(|(a, b)| a != b);
            return Some(format!("per-net routes differ (first at net {net:?})"));
        }
        if self.occupancy != other.occupancy {
            return Some("segment-ownership digest differs".into());
        }
        if self.globally_unrouted != other.globally_unrouted || self.incomplete != other.incomplete
        {
            return Some(format!(
                "unrouted counters differ: G {} vs {}, D {} vs {}",
                self.globally_unrouted, other.globally_unrouted, self.incomplete, other.incomplete
            ));
        }
        if self.worst_bits != other.worst_bits {
            return Some(format!(
                "worst delay differs: {} vs {}",
                f64::from_bits(self.worst_bits),
                f64::from_bits(other.worst_bits)
            ));
        }
        if self.arrival_bits != other.arrival_bits {
            let cell = self
                .arrival_bits
                .iter()
                .zip(&other.arrival_bits)
                .position(|(a, b)| a != b);
            return Some(format!("cell arrivals differ (first at cell {cell:?})"));
        }
        None
    }
}

/// **State-vs-rebuild oracle.** Re-derives the routing occupancy, queue
/// bookkeeping and counters from the per-net routes alone (export →
/// restore, the checkpoint path), and a from-scratch timing analysis, and
/// compares both against the incrementally maintained state. Also runs the
/// full structural-invariant library.
pub fn differential_audit(
    arch: &Architecture,
    netlist: &Netlist,
    problem: &LayoutProblem,
) -> Result<(), OracleFailure> {
    const NAME: &str = "state-vs-rebuild";
    crate::invariants::check_all(arch, netlist, problem.placement(), problem.routing())
        .map_err(|v| OracleFailure::new(NAME, v.to_string()))?;

    // Routing: rebuild occupancy from the routes and compare wholesale.
    let rebuilt = RoutingState::restore(arch, netlist, &problem.routing().export_routes())
        .map_err(|e| OracleFailure::new(NAME, format!("routes do not restore: {e}")))?;
    if rebuilt.occupancy_digest() != problem.routing().occupancy_digest() {
        return Err(OracleFailure::new(
            NAME,
            "segment ownership diverged from the ownership re-derived from routes".into(),
        ));
    }
    if rebuilt.globally_unrouted() != problem.routing().globally_unrouted()
        || rebuilt.incomplete() != problem.routing().incomplete()
    {
        return Err(OracleFailure::new(
            NAME,
            format!(
                "counters diverged: incremental G={} D={}, rebuilt G={} D={}",
                problem.routing().globally_unrouted(),
                problem.routing().incomplete(),
                rebuilt.globally_unrouted(),
                rebuilt.incomplete()
            ),
        ));
    }

    // Timing: from-scratch analysis, compared to ULP tolerance.
    let oracle = TimingState::new(arch, netlist, problem.placement(), problem.routing())
        .map_err(|e| OracleFailure::new(NAME, format!("timing oracle: {e}")))?;
    if !ulp_close(oracle.worst(), problem.timing().worst()) {
        return Err(OracleFailure::new(
            NAME,
            format!(
                "worst delay diverged: incremental {} vs from-scratch {} ({} ulps)",
                problem.timing().worst(),
                oracle.worst(),
                ulp_distance(oracle.worst(), problem.timing().worst())
            ),
        ));
    }
    for (cell, _) in netlist.cells() {
        let tracked = problem.timing().arrival(cell);
        let truth = oracle.arrival(cell);
        if !ulp_close(tracked, truth) {
            return Err(OracleFailure::new(
                NAME,
                format!(
                    "arrival diverged at {cell}: incremental {tracked} vs from-scratch {truth}"
                ),
            ));
        }
    }
    Ok(())
}

/// **Rollback identity oracle.** Applies `mv` through the full cascade and
/// immediately rolls it back; the complete state digest must be
/// bit-identical to before. Returns the digest so callers can amortize it.
pub fn rollback_identity(problem: &mut LayoutProblem, mv: Move) -> Result<(), OracleFailure> {
    let before = StateDigest::of(problem);
    let (applied, _) = problem.apply_move(mv);
    problem.undo(applied);
    let after = StateDigest::of(problem);
    match before.diff(&after) {
        None => Ok(()),
        Some(d) => Err(OracleFailure::new(
            "rollback-identity",
            format!("apply-then-undo changed state: {d}"),
        )),
    }
}

/// Builds a complete checkpoint of the live problem around a synthetic
/// anneal cursor (deterministic in `seed`), for exercising the
/// serialization and crash-recovery paths without running the annealer.
pub fn synthetic_checkpoint(
    arch: &Architecture,
    netlist: &Netlist,
    problem: &LayoutProblem,
    seed: u64,
) -> Checkpoint {
    Checkpoint {
        version: CHECKPOINT_VERSION,
        arch_fingerprint: arch_fingerprint(arch),
        netlist_fingerprint: netlist_fingerprint(netlist),
        placement_seed: seed,
        anneal_seed: seed ^ 0x9e37,
        repairs: 0,
        cursor: AnnealCursor {
            rng_state: [seed, seed ^ 0xdead, seed ^ 0xbeef, !seed],
            temperature: 12.5,
            next_index: 3,
            stalled: 1,
            total_moves: 4242,
            best_cost: 17.25,
            frozen: false,
        },
        problem: problem.snapshot(),
        best: None,
    }
}

/// **Checkpoint round-trip oracle.** Serializes the live problem into a
/// full checkpoint (JSON text), parses it back, validates the header,
/// restores a fresh problem from it, and requires the restored layout to be
/// bit-identical (timing re-derived, compared to ULP tolerance through
/// [`differential_audit`]'s machinery on the restored problem).
pub fn checkpoint_roundtrip(
    arch: &Architecture,
    netlist: &Netlist,
    problem: &LayoutProblem,
    router_cfg: RouterConfig,
    cost_cfg: CostConfig,
    move_weights: MoveWeights,
    seed: u64,
) -> Result<(), OracleFailure> {
    const NAME: &str = "checkpoint-roundtrip";
    let ckpt = synthetic_checkpoint(arch, netlist, problem, seed);
    let cursor = ckpt.cursor.clone();
    let text = ckpt.to_json().to_string_compact();
    let parsed = rowfpga_obs::json::parse(&text).map_err(|e| {
        OracleFailure::new(NAME, format!("serialized checkpoint does not parse: {e}"))
    })?;
    let back = Checkpoint::from_json(&parsed)
        .map_err(|e| OracleFailure::new(NAME, format!("checkpoint does not decode: {e}")))?;
    back.validate(arch, netlist, seed, seed ^ 0x9e37)
        .map_err(|e| OracleFailure::new(NAME, format!("restored header fails validation: {e}")))?;
    if back.cursor != cursor {
        return Err(OracleFailure::new(
            NAME,
            "anneal cursor did not survive the round trip".into(),
        ));
    }
    if back.problem != ckpt.problem {
        return Err(OracleFailure::new(
            NAME,
            "problem snapshot did not survive the round trip".into(),
        ));
    }
    let restored = LayoutProblem::restore(
        arch,
        netlist,
        router_cfg,
        cost_cfg,
        move_weights,
        &back.problem,
    )
    .map_err(|e| OracleFailure::new(NAME, format!("snapshot does not restore: {e}")))?;
    // The restored problem re-derives timing from scratch; compare layouts
    // bit-exactly and timing to tolerance.
    if restored.placement().export_sites() != problem.placement().export_sites()
        || restored.placement().export_pinmaps() != problem.placement().export_pinmaps()
    {
        return Err(OracleFailure::new(
            NAME,
            "restored placement differs from the original".into(),
        ));
    }
    if restored.routing().occupancy_digest() != problem.routing().occupancy_digest() {
        return Err(OracleFailure::new(
            NAME,
            "restored routing occupancy differs from the original".into(),
        ));
    }
    if !ulp_close(restored.timing().worst(), problem.timing().worst()) {
        return Err(OracleFailure::new(
            NAME,
            format!(
                "restored worst delay {} vs live {}",
                restored.timing().worst(),
                problem.timing().worst()
            ),
        ));
    }
    Ok(())
}

/// **Checkpoint crash-window oracle.** Saves a complete snapshot, then
/// injects each of the two crash windows of the atomic write protocol on a
/// *subsequent* save of a newer snapshot. The injected crash must surface
/// as an error, and a reload must still yield the last complete snapshot —
/// never the torn or orphaned newer one.
pub fn checkpoint_crash_windows(
    arch: &Architecture,
    netlist: &Netlist,
    problem: &LayoutProblem,
    seed: u64,
    dir: &std::path::Path,
) -> Result<(), OracleFailure> {
    const NAME: &str = "checkpoint-crash-window";
    let io = |e: std::io::Error| OracleFailure::new(NAME, format!("scratch dir: {e}"));
    std::fs::create_dir_all(dir).map_err(io)?;
    let path = dir.join(format!("crash-window-{seed:016x}.ckpt.json"));
    let good = synthetic_checkpoint(arch, netlist, problem, seed);
    good.save(&path, None)
        .map_err(|e| OracleFailure::new(NAME, format!("clean save failed: {e}")))?;
    let mut newer = good.clone();
    newer.cursor.total_moves += 1;
    newer.cursor.temperature *= 0.9;
    for fault in [WriteFault::ShortWrite, WriteFault::SkipRename] {
        if newer.save(&path, Some(fault)).is_ok() {
            return Err(OracleFailure::new(
                NAME,
                format!("injected {fault:?} crash was not surfaced as an error"),
            ));
        }
        let loaded = Checkpoint::load(&path).map_err(|e| {
            OracleFailure::new(
                NAME,
                format!("after injected {fault:?}, the previous snapshot is unreadable: {e}"),
            )
        })?;
        if loaded != good {
            return Err(OracleFailure::new(
                NAME,
                format!("after injected {fault:?}, reload returned a different snapshot"),
            ));
        }
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(rowfpga_core::checkpoint_temp_path(&path)).ok();
    Ok(())
}

/// **K-replica determinism oracle.** Runs K-replica parallel annealing
/// twice with the same (seed, K) — the winning snapshot must be
/// bit-identical — and additionally requires the single-replica parallel
/// path to reproduce the sequential [`anneal`](rowfpga_anneal::anneal)
/// engine bit-for-bit (replica 0 runs the base RNG stream).
pub fn replica_determinism(
    arch: &Architecture,
    netlist: &Netlist,
    seed: u64,
    replicas: usize,
) -> Result<(), OracleFailure> {
    const NAME: &str = "replica-determinism";
    let config = AnnealConfig {
        seed: seed ^ 0x9e37,
        ..AnnealConfig::smoke()
    };
    let par = ParallelConfig::default();
    let factory = |_r: usize| {
        LayoutProblem::new(
            arch,
            netlist,
            RouterConfig::default(),
            CostConfig::default(),
            MoveWeights::default(),
            seed,
        )
        .expect("a generated fuzz case always constructs")
    };
    let a = anneal_parallel(factory, replicas, &config, &par);
    let b = anneal_parallel(factory, replicas, &config, &par);
    if a.best_replica != b.best_replica
        || a.best_cost.to_bits() != b.best_cost.to_bits()
        || a.best != b.best
    {
        return Err(OracleFailure::new(
            NAME,
            format!(
                "two {replicas}-replica runs with seed {seed} diverged \
                 (winner {} cost {} vs winner {} cost {})",
                a.best_replica, a.best_cost, b.best_replica, b.best_cost
            ),
        ));
    }
    // K = 1 must reproduce the sequential engine exactly.
    let single = anneal_parallel(factory, 1, &config, &par);
    let mut problem = factory(0);
    rowfpga_anneal::anneal(&mut problem, &config, |_| {});
    let seq_snapshot = LayoutProblem::snapshot(&problem);
    if single.best != seq_snapshot {
        return Err(OracleFailure::new(
            NAME,
            format!("1-replica parallel run differs from the sequential engine (seed {seed})"),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_case, CaseConfig};
    use crate::script::{op_to_move, random_script};
    use rowfpga_anneal::AnnealProblem;

    fn small_case(seed: u64) -> crate::gen::FuzzCase {
        random_case(
            seed,
            &CaseConfig {
                min_cells: 20,
                max_cells: 80,
            },
        )
    }

    fn problem<'a>(case: &'a crate::gen::FuzzCase, seed: u64) -> LayoutProblem<'a> {
        LayoutProblem::new(
            &case.arch,
            &case.netlist,
            RouterConfig::default(),
            CostConfig::default(),
            MoveWeights::default(),
            seed,
        )
        .unwrap()
    }

    #[test]
    fn ulp_distance_behaves() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        assert_eq!(ulp_distance(1.0, f64::from_bits(1.0f64.to_bits() + 1)), 1);
        assert!(ulp_distance(1.0, 1.0 + 1e-9) > TIMING_ULPS);
        assert_eq!(ulp_distance(f64::NAN, 1.0), u64::MAX);
        assert!(ulp_distance(-1.0, 1.0) > TIMING_ULPS);
    }

    #[test]
    fn fresh_and_replayed_problems_pass_the_audit() {
        let case = small_case(1);
        let mut p = problem(&case, 7);
        differential_audit(&case.arch, &case.netlist, &p).unwrap();
        let script = random_script(&case, 3, 60);
        crate::script::replay(&mut p, &script.ops);
        differential_audit(&case.arch, &case.netlist, &p).unwrap();
    }

    #[test]
    fn rollback_is_bit_identical_over_random_moves() {
        let case = small_case(2);
        let mut p = problem(&case, 3);
        let script = random_script(&case, 4, 40);
        for op in &script.ops {
            let mv = op_to_move(op, &p).unwrap();
            rollback_identity(&mut p, mv).unwrap();
            // advance the trajectory with the same move, honoring accept
            let (applied, _) = p.apply_move(op_to_move(op, &p).unwrap());
            if op.accepts() {
                p.commit(applied);
            } else {
                p.undo(applied);
            }
        }
    }

    #[test]
    fn checkpoints_round_trip_bit_identically() {
        let case = small_case(3);
        let mut p = problem(&case, 5);
        let script = random_script(&case, 6, 50);
        crate::script::replay(&mut p, &script.ops);
        checkpoint_roundtrip(
            &case.arch,
            &case.netlist,
            &p,
            RouterConfig::default(),
            CostConfig::default(),
            MoveWeights::default(),
            5,
        )
        .unwrap();
    }

    #[test]
    fn parallel_annealing_is_deterministic() {
        let case = random_case(
            4,
            &CaseConfig {
                min_cells: 20,
                max_cells: 40,
            },
        );
        replica_determinism(&case.arch, &case.netlist, 11, 2).unwrap();
    }
}
