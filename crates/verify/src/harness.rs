//! The fuzzing harness: random cases, random scripts, the full oracle
//! suite, and shrinking of anything that fails.
//!
//! One *iteration* draws a random architecture + netlist (see
//! [`crate::gen`]), replays a random move script through the incremental
//! cascade with periodic rollback-identity probes, then runs the
//! differential audit, the checkpoint round trip and (periodically) the
//! K-replica determinism oracle. A failing iteration is reduced with
//! [`ddmin`] and written to the corpus directory as a minimal repro.
//!
//! Under the `fault-inject` feature, [`run_fuzz_with_faults`] instead
//! *plants* each corruption kind from the engine's fault hooks and proves
//! the oracle suite catches every one — the harness's own end-to-end test.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rowfpga_anneal::AnnealProblem;
use rowfpga_arch::Architecture;
use rowfpga_core::{CostConfig, LayoutProblem};
use rowfpga_netlist::Netlist;
use rowfpga_place::MoveWeights;
use rowfpga_route::RouterConfig;

use crate::gen::{random_case, CaseConfig, FuzzCase};
use crate::oracle;
use crate::repro::Repro;
use crate::script::{op_to_move, random_script, MoveScript, ScriptOp};
use crate::shrink::ddmin;

/// Replay ops between rollback-identity probes.
const ROLLBACK_PROBE_EVERY: usize = 16;
/// Iterations between (comparatively slow) replica-determinism checks.
const DETERMINISM_EVERY: u64 = 8;
/// Iterations run when neither `--iters` nor `--seconds` is given.
const DEFAULT_ITERS: u64 = 20;

/// Fuzzing campaign configuration.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Base seed; every iteration derives its case and script from it.
    pub seed: u64,
    /// Stop after this many iterations (both limits may be set; the first
    /// one reached wins). With neither set, runs [`DEFAULT_ITERS`].
    pub iters: Option<u64>,
    /// Stop after this wall-clock budget, checked between iterations.
    pub seconds: Option<u64>,
    /// Directory receiving shrunk `.net` + `.repro.json` pairs.
    pub corpus: Option<PathBuf>,
    /// Netlist size range for generated cases.
    pub cells: CaseConfig,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 1,
            iters: None,
            seconds: None,
            corpus: None,
            cells: CaseConfig::default(),
        }
    }
}

/// One shrunk failure found by a campaign.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// Iteration that tripped.
    pub iteration: u64,
    /// Seed that regenerates the case.
    pub case_seed: u64,
    /// The oracle's description of the violation.
    pub failure: String,
    /// Script length before shrinking.
    pub original_len: usize,
    /// The 1-minimal script.
    pub shrunk: MoveScript,
    /// Where the repro pair was written, when a corpus dir was given.
    pub repro_path: Option<PathBuf>,
}

/// Campaign summary.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Iterations completed.
    pub iterations: u64,
    /// Total script operations replayed (excluding shrinking replays).
    pub ops_replayed: u64,
    /// Every failure found, shrunk.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// Whether the campaign finished without a single violation.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

fn crash_window_scratch() -> PathBuf {
    std::env::temp_dir().join(format!("rowfpga-crash-scratch-{}", std::process::id()))
}

fn mix(seed: u64, i: u64) -> u64 {
    seed ^ i
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(0x6a09_e667_f3bc_c909)
}

fn build_problem<'a>(
    arch: &'a Architecture,
    netlist: &'a Netlist,
    seed: u64,
) -> Result<LayoutProblem<'a>, String> {
    LayoutProblem::new(
        arch,
        netlist,
        RouterConfig::default(),
        CostConfig::default(),
        MoveWeights::default(),
        seed,
    )
    .map_err(|e| format!("problem construction failed: {e}"))
}

/// Replays `ops` with periodic rollback-identity probes, then runs the
/// differential audit and the checkpoint round trip. Returns the first
/// violation's description, or `None` when the state survives everything.
///
/// This is both the campaign's per-iteration check and the shrinker's
/// failure predicate: it is deterministic in `(arch, netlist, seed, ops)`
/// and rebuilds the problem from scratch on every call.
pub fn check_script(
    arch: &Architecture,
    netlist: &Netlist,
    seed: u64,
    ops: &[ScriptOp],
) -> Option<String> {
    let mut problem = match build_problem(arch, netlist, seed) {
        Ok(p) => p,
        Err(e) => return Some(e),
    };
    for (i, op) in ops.iter().enumerate() {
        if i.is_multiple_of(ROLLBACK_PROBE_EVERY) {
            if let Some(mv) = op_to_move(op, &problem) {
                if let Err(f) = oracle::rollback_identity(&mut problem, mv) {
                    return Some(format!("after {i} ops: {f}"));
                }
            }
        }
        #[cfg(feature = "fault-inject")]
        if let ScriptOp::Fault(fault) = op {
            problem.inject_fault(fault);
            continue;
        }
        if let Some(mv) = op_to_move(op, &problem) {
            let (applied, _) = problem.apply_move(mv);
            if op.accepts() {
                problem.commit(applied);
            } else {
                problem.undo(applied);
            }
        }
    }
    if let Err(f) = oracle::differential_audit(arch, netlist, &problem) {
        return Some(f.to_string());
    }
    if let Err(f) = oracle::checkpoint_roundtrip(
        arch,
        netlist,
        &problem,
        RouterConfig::default(),
        CostConfig::default(),
        MoveWeights::default(),
        seed,
    ) {
        return Some(f.to_string());
    }
    None
}

fn shrink_and_save(
    case: &FuzzCase,
    seed: u64,
    ops: &[ScriptOp],
    failure: &str,
    corpus: Option<&PathBuf>,
    log: &mut impl FnMut(&str),
) -> (MoveScript, Option<PathBuf>) {
    let shrunk = MoveScript {
        ops: ddmin(ops, |sub| {
            check_script(&case.arch, &case.netlist, seed, sub).is_some()
        }),
    };
    log(&format!("  shrunk {} ops -> {}", ops.len(), shrunk.len()));
    let repro_path = corpus.and_then(|dir| {
        let stem = format!("repro-{seed:016x}");
        let repro = Repro {
            arch: case.params.clone(),
            netlist_file: format!("{stem}.net"),
            placement_seed: seed,
            script: shrunk.clone(),
            failure: failure.to_string(),
            original_len: ops.len(),
        };
        match repro.save(dir, &stem, &case.netlist) {
            Ok(path) => {
                log(&format!("  wrote {}", path.display()));
                Some(path)
            }
            Err(e) => {
                log(&format!("  failed to write repro: {e}"));
                None
            }
        }
    });
    (shrunk, repro_path)
}

/// Runs a fuzzing campaign. `log` receives one human-readable progress
/// line per notable event (iteration milestones, failures, shrinks).
pub fn run_fuzz(cfg: &FuzzConfig, mut log: impl FnMut(&str)) -> FuzzReport {
    // rowfpga-lint: allow(determinism) reason=wall-clock bounds the fuzz campaign; case generation is seed-driven
    let start = Instant::now();
    let mut report = FuzzReport::default();
    let done = |i: u64, start: &Instant| -> bool {
        if cfg.iters.is_some_and(|n| i >= n) {
            return true;
        }
        if let Some(s) = cfg.seconds {
            if start.elapsed() >= Duration::from_secs(s) {
                return true;
            }
        }
        cfg.iters.is_none() && cfg.seconds.is_none() && i >= DEFAULT_ITERS
    };
    let mut i = 0u64;
    while !done(i, &start) {
        let case_seed = mix(cfg.seed, i);
        let case = random_case(case_seed, &cfg.cells);
        let len = StdRng::seed_from_u64(case_seed ^ 0x5c41_0000_0000_00aa).gen_range(48..=192);
        let script = random_script(&case, case_seed ^ 1, len);
        log(&format!(
            "iter {i}: seed {case_seed:#018x}, {} cells, {} ops",
            case.netlist.num_cells(),
            script.len()
        ));
        if let Some(failure) = check_script(&case.arch, &case.netlist, case_seed, &script.ops) {
            log(&format!("iter {i}: FAIL: {failure}"));
            let (shrunk, repro_path) = shrink_and_save(
                &case,
                case_seed,
                &script.ops,
                &failure,
                cfg.corpus.as_ref(),
                &mut log,
            );
            report.failures.push(FuzzFailure {
                iteration: i,
                case_seed,
                failure,
                original_len: script.len(),
                shrunk,
                repro_path,
            });
        }
        if i.is_multiple_of(DETERMINISM_EVERY) {
            if let Err(f) = oracle::replica_determinism(&case.arch, &case.netlist, case_seed, 2) {
                log(&format!("iter {i}: FAIL: {f}"));
                report.failures.push(FuzzFailure {
                    iteration: i,
                    case_seed,
                    failure: f.to_string(),
                    original_len: 0,
                    shrunk: MoveScript::default(),
                    repro_path: None,
                });
            }
            // Scratch space only — never the corpus, which holds repros.
            let scratch = crash_window_scratch();
            let problem = build_problem(&case.arch, &case.netlist, case_seed);
            if let Ok(problem) = problem {
                if let Err(f) = oracle::checkpoint_crash_windows(
                    &case.arch,
                    &case.netlist,
                    &problem,
                    case_seed,
                    &scratch,
                ) {
                    log(&format!("iter {i}: FAIL: {f}"));
                    report.failures.push(FuzzFailure {
                        iteration: i,
                        case_seed,
                        failure: f.to_string(),
                        original_len: 0,
                        shrunk: MoveScript::default(),
                        repro_path: None,
                    });
                }
            }
        }
        report.ops_replayed += script.len() as u64;
        report.iterations += 1;
        i += 1;
    }
    report
}

/// Loads a repro pair from disk and re-runs the oracle suite over it.
/// Returns the reproduced failure description, or `None` when the repro no
/// longer fails (i.e. the bug is fixed).
///
/// # Errors
///
/// Returns a description when the repro files cannot be read or decoded.
pub fn replay_repro(path: &std::path::Path) -> Result<Option<String>, String> {
    let (repro, netlist) = Repro::load(path)?;
    let arch = repro
        .arch
        .build()
        .map_err(|e| format!("repro architecture does not build: {e}"))?;
    Ok(check_script(
        &arch,
        &netlist,
        repro.placement_seed,
        &repro.script.ops,
    ))
}

/// One planted-fault trial.
#[cfg(feature = "fault-inject")]
#[derive(Clone, Debug)]
pub struct FaultTrial {
    /// Debug rendering of the planted fault.
    pub fault: String,
    /// Whether the oracle suite flagged the corrupted run.
    pub detected: bool,
    /// The failure description (empty when undetected).
    pub failure: String,
    /// Script length including the fault op (0 for write faults, which
    /// carry no script).
    pub original_len: usize,
    /// Shrunk script length.
    pub shrunk_len: usize,
}

#[cfg(feature = "fault-inject")]
impl FaultTrial {
    /// Shrunk length as a fraction of the original (0 when no script).
    pub fn shrink_ratio(&self) -> f64 {
        if self.original_len == 0 {
            0.0
        } else {
            self.shrunk_len as f64 / self.original_len as f64
        }
    }
}

/// Planted-fault campaign summary.
#[cfg(feature = "fault-inject")]
#[derive(Clone, Debug, Default)]
pub struct FaultReport {
    /// One trial per fault kind.
    pub trials: Vec<FaultTrial>,
}

#[cfg(feature = "fault-inject")]
impl FaultReport {
    /// Whether every planted fault was detected.
    pub fn all_detected(&self) -> bool {
        self.trials.iter().all(|t| t.detected)
    }

    /// Worst shrink ratio across script-carrying trials.
    pub fn worst_shrink_ratio(&self) -> f64 {
        self.trials
            .iter()
            .map(FaultTrial::shrink_ratio)
            .fold(0.0, f64::max)
    }
}

/// Plants every state-corruption fault kind at the end of a random script
/// and proves the oracle suite detects each one and that the failure
/// shrinks; then exercises both checkpoint-write crash windows. This is
/// the harness's self-test: a fuzzer that cannot catch planted bugs cannot
/// be trusted to catch real ones.
#[cfg(feature = "fault-inject")]
pub fn run_fuzz_with_faults(cfg: &FuzzConfig, mut log: impl FnMut(&str)) -> FaultReport {
    use rowfpga_core::InjectedFault;

    const SCRIPT_LEN: usize = 64;
    let state_faults = [
        InjectedFault::RouteOwner { nth: 3 },
        InjectedFault::RouteRun { nth: 1 },
        InjectedFault::RouteCounter,
        InjectedFault::TimingWorst { delta_ps: 125.0 },
        InjectedFault::TimingArrival {
            cell: 5,
            delta_ps: 75.0,
        },
    ];
    let mut report = FaultReport::default();
    for (k, fault) in state_faults.iter().enumerate() {
        // Find a case where the fault actually lands (has something to
        // corrupt after the script replays). With >= 20 cells the initial
        // placement always routes something, so the first seed near-always
        // works; the retry loop keeps the trial deterministic regardless.
        let mut planted = None;
        for attempt in 0..8u64 {
            let case_seed = mix(cfg.seed, (k as u64) * 8 + attempt);
            let case = random_case(case_seed, &cfg.cells);
            let script = random_script(&case, case_seed ^ 1, SCRIPT_LEN);
            let mut probe = match build_problem(&case.arch, &case.netlist, case_seed) {
                Ok(p) => p,
                Err(_) => continue,
            };
            crate::script::replay(&mut probe, &script.ops);
            if probe.inject_fault(fault) {
                planted = Some((case, script, case_seed));
                break;
            }
        }
        let Some((case, mut script, case_seed)) = planted else {
            report.trials.push(FaultTrial {
                fault: format!("{fault:?}"),
                detected: false,
                failure: "fault found nothing to corrupt in 8 cases".into(),
                original_len: 0,
                shrunk_len: 0,
            });
            continue;
        };
        script.ops.push(ScriptOp::Fault(*fault));
        let failure = check_script(&case.arch, &case.netlist, case_seed, &script.ops);
        let detected = failure.is_some();
        let (shrunk_len, failure) = match failure {
            Some(f) => {
                log(&format!("{fault:?}: detected ({f})"));
                let (shrunk, _) = shrink_and_save(
                    &case,
                    case_seed,
                    &script.ops,
                    &f,
                    cfg.corpus.as_ref(),
                    &mut log,
                );
                (shrunk.len(), f)
            }
            None => {
                log(&format!("{fault:?}: NOT DETECTED"));
                (script.len(), String::new())
            }
        };
        report.trials.push(FaultTrial {
            fault: format!("{fault:?}"),
            detected,
            failure,
            original_len: script.len(),
            shrunk_len,
        });
    }

    // Checkpoint-write crash windows carry no move script; the oracle
    // drives both injected crashes and checks the recovery invariant.
    let case_seed = mix(cfg.seed, 0x77);
    let case = random_case(case_seed, &cfg.cells);
    let scratch = crash_window_scratch();
    let crash_result = build_problem(&case.arch, &case.netlist, case_seed)
        .map_err(|e| e.to_string())
        .and_then(|problem| {
            oracle::checkpoint_crash_windows(
                &case.arch,
                &case.netlist,
                &problem,
                case_seed,
                &scratch,
            )
            .map_err(|f| f.to_string())
        });
    for fault in ["CheckpointShortWrite", "CheckpointSkipRename"] {
        let trial = FaultTrial {
            fault: fault.to_string(),
            detected: crash_result.is_ok(),
            failure: crash_result.clone().err().unwrap_or_default(),
            original_len: 0,
            shrunk_len: 0,
        };
        log(&format!(
            "{fault}: {}",
            if trial.detected {
                "crash surfaced, last snapshot survived"
            } else {
                "RECOVERY VIOLATION"
            }
        ));
        report.trials.push(trial);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_short_clean_campaign_reports_no_failures() {
        let cfg = FuzzConfig {
            seed: 42,
            iters: Some(2),
            cells: CaseConfig {
                min_cells: 20,
                max_cells: 60,
            },
            ..FuzzConfig::default()
        };
        let mut lines = Vec::new();
        let report = run_fuzz(&cfg, |l| lines.push(l.to_string()));
        assert!(report.clean(), "unexpected failures: {:?}", report.failures);
        assert_eq!(report.iterations, 2);
        assert!(report.ops_replayed >= 96);
        assert!(!lines.is_empty());
    }

    #[test]
    fn replaying_a_saved_repro_reproduces_nothing_on_a_clean_engine() {
        // A repro whose script is legal but whose engine is healthy must
        // replay cleanly (used by triage to confirm a fix).
        let case = random_case(
            7,
            &CaseConfig {
                min_cells: 20,
                max_cells: 40,
            },
        );
        let script = random_script(&case, 8, 10);
        let repro = Repro {
            arch: case.params.clone(),
            netlist_file: "clean.net".into(),
            placement_seed: 7,
            script,
            failure: "none".into(),
            original_len: 10,
        };
        let dir = std::env::temp_dir().join(format!("rowfpga-replay-test-{}", std::process::id()));
        let path = repro.save(&dir, "clean", &case.netlist).unwrap();
        assert_eq!(replay_repro(&path).unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
