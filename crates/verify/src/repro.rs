//! Minimal-repro files: a failing (netlist, move-sequence) pair reduced by
//! the shrinker and written as a `.net` netlist plus a JSON sidecar holding
//! the architecture recipe, the shrunk script and the failure description.
//!
//! Triage workflow: `rowfpga fuzz --replay foo.repro.json` rebuilds the
//! exact fabric and placement, replays the script and re-runs the oracle
//! suite, reproducing the recorded failure deterministically.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use rowfpga_netlist::{parse_netlist, write_netlist, Netlist};
use rowfpga_obs::json::Json;

use crate::gen::ArchParams;
use crate::script::{MoveScript, ScriptOp};

/// Version tag of the repro JSON format.
pub const REPRO_FORMAT: &str = "rowfpga-repro";
/// Current repro format version.
pub const REPRO_VERSION: u64 = 1;

/// A self-contained failure reproduction.
#[derive(Clone, Debug, PartialEq)]
pub struct Repro {
    /// Fabric recipe.
    pub arch: ArchParams,
    /// File name of the sibling `.net` netlist (relative to the repro).
    pub netlist_file: String,
    /// Seed of the initial random placement.
    pub placement_seed: u64,
    /// The (shrunk) operation sequence.
    pub script: MoveScript,
    /// Human-readable description of the failure the script triggers.
    pub failure: String,
    /// Length of the move sequence before shrinking.
    pub original_len: usize,
}

fn op_to_json(op: &ScriptOp) -> Json {
    let s = |v: &str| Json::Str(v.to_string());
    match *op {
        ScriptOp::Exchange { a, b, accept } => Json::obj(vec![
            ("op", s("exchange")),
            ("a", Json::Num(a as f64)),
            ("b", Json::Num(b as f64)),
            ("accept", Json::Bool(accept)),
        ]),
        ScriptOp::Pinmap { cell, to, accept } => Json::obj(vec![
            ("op", s("pinmap")),
            ("cell", Json::Num(cell as f64)),
            ("to", Json::Num(to as f64)),
            ("accept", Json::Bool(accept)),
        ]),
        #[cfg(feature = "fault-inject")]
        ScriptOp::Fault(fault) => {
            use rowfpga_core::InjectedFault;
            let mut pairs = vec![("op", s("fault"))];
            match fault {
                InjectedFault::RouteOwner { nth } => {
                    pairs.push(("kind", s("route_owner")));
                    pairs.push(("nth", Json::Num(nth as f64)));
                }
                InjectedFault::RouteRun { nth } => {
                    pairs.push(("kind", s("route_run")));
                    pairs.push(("nth", Json::Num(nth as f64)));
                }
                InjectedFault::RouteCounter => pairs.push(("kind", s("route_counter"))),
                InjectedFault::TimingWorst { delta_ps } => {
                    pairs.push(("kind", s("timing_worst")));
                    pairs.push(("delta_ps", Json::Num(delta_ps)));
                }
                InjectedFault::TimingArrival { cell, delta_ps } => {
                    pairs.push(("kind", s("timing_arrival")));
                    pairs.push(("cell", Json::Num(cell as f64)));
                    pairs.push(("delta_ps", Json::Num(delta_ps)));
                }
                InjectedFault::CheckpointShortWrite => {
                    pairs.push(("kind", s("checkpoint_short_write")));
                }
                InjectedFault::CheckpointSkipRename => {
                    pairs.push(("kind", s("checkpoint_skip_rename")));
                }
            }
            Json::obj(pairs)
        }
    }
}

fn op_from_json(j: &Json) -> Result<ScriptOp, String> {
    let kind = j
        .get("op")
        .and_then(Json::as_str)
        .ok_or("script op missing 'op'")?;
    let num = |key: &str| -> Result<u64, String> {
        j.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("script op missing numeric '{key}'"))
    };
    let accept = || -> Result<bool, String> {
        j.get("accept")
            .and_then(Json::as_bool)
            .ok_or_else(|| "script op missing 'accept'".to_string())
    };
    match kind {
        "exchange" => Ok(ScriptOp::Exchange {
            a: num("a")? as usize,
            b: num("b")? as usize,
            accept: accept()?,
        }),
        "pinmap" => Ok(ScriptOp::Pinmap {
            cell: num("cell")? as usize,
            to: num("to")? as u16,
            accept: accept()?,
        }),
        "fault" => {
            #[cfg(feature = "fault-inject")]
            {
                use rowfpga_core::InjectedFault;
                let fkind = j
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or("fault op missing 'kind'")?;
                let delta = || {
                    j.get("delta_ps")
                        .and_then(Json::as_f64)
                        .ok_or("fault op missing 'delta_ps'")
                };
                let fault = match fkind {
                    "route_owner" => InjectedFault::RouteOwner {
                        nth: num("nth")? as usize,
                    },
                    "route_run" => InjectedFault::RouteRun {
                        nth: num("nth")? as usize,
                    },
                    "route_counter" => InjectedFault::RouteCounter,
                    "timing_worst" => InjectedFault::TimingWorst { delta_ps: delta()? },
                    "timing_arrival" => InjectedFault::TimingArrival {
                        cell: num("cell")? as usize,
                        delta_ps: delta()?,
                    },
                    "checkpoint_short_write" => InjectedFault::CheckpointShortWrite,
                    "checkpoint_skip_rename" => InjectedFault::CheckpointSkipRename,
                    other => return Err(format!("unknown fault kind '{other}'")),
                };
                Ok(ScriptOp::Fault(fault))
            }
            #[cfg(not(feature = "fault-inject"))]
            Err("repro contains a fault op; rebuild with --features fault-inject".to_string())
        }
        other => Err(format!("unknown script op '{other}'")),
    }
}

impl Repro {
    /// Serializes the repro (without the netlist, which lives in the
    /// sibling `.net` file).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("format", Json::Str(REPRO_FORMAT.to_string())),
            ("version", Json::Num(REPRO_VERSION as f64)),
            ("failure", Json::Str(self.failure.clone())),
            ("netlist_file", Json::Str(self.netlist_file.clone())),
            ("placement_seed", Json::Str(self.placement_seed.to_string())),
            ("original_len", Json::Num(self.original_len as f64)),
            ("arch", self.arch.to_json()),
            (
                "script",
                Json::Arr(self.script.ops.iter().map(op_to_json).collect()),
            ),
        ])
    }

    /// Parses a repro sidecar.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(j: &Json) -> Result<Repro, String> {
        match j.get("format").and_then(Json::as_str) {
            Some(REPRO_FORMAT) => {}
            other => return Err(format!("not a {REPRO_FORMAT} file (format: {other:?})")),
        }
        let arch = ArchParams::from_json(j.get("arch").ok_or("missing 'arch'")?)?;
        let ops = j
            .get("script")
            .and_then(Json::as_arr)
            .ok_or("missing 'script' array")?
            .iter()
            .map(op_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Repro {
            arch,
            netlist_file: j
                .get("netlist_file")
                .and_then(Json::as_str)
                .ok_or("missing 'netlist_file'")?
                .to_string(),
            placement_seed: j
                .get("placement_seed")
                .and_then(Json::as_str)
                .ok_or("missing 'placement_seed'")?
                .parse::<u64>()
                .map_err(|e| format!("bad placement_seed: {e}"))?,
            script: MoveScript { ops },
            failure: j
                .get("failure")
                .and_then(Json::as_str)
                .unwrap_or("unrecorded failure")
                .to_string(),
            original_len: j.get("original_len").and_then(Json::as_u64).unwrap_or(0) as usize,
        })
    }

    /// Writes `<dir>/<stem>.net` and `<dir>/<stem>.repro.json`, returning
    /// the sidecar path.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error.
    pub fn save(&self, dir: &Path, stem: &str, netlist: &Netlist) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{stem}.net")), write_netlist(netlist))?;
        let sidecar = dir.join(format!("{stem}.repro.json"));
        fs::write(&sidecar, self.to_json().to_string_pretty())?;
        Ok(sidecar)
    }

    /// Loads a repro sidecar and its sibling netlist.
    ///
    /// # Errors
    ///
    /// Returns a description when either file is missing or malformed.
    pub fn load(path: &Path) -> Result<(Repro, Netlist), String> {
        let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let j = rowfpga_obs::json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let repro = Repro::from_json(&j)?;
        let net_path = path
            .parent()
            .unwrap_or_else(|| Path::new("."))
            .join(&repro.netlist_file);
        let net_text =
            fs::read_to_string(&net_path).map_err(|e| format!("{}: {e}", net_path.display()))?;
        let netlist =
            parse_netlist(&net_text).map_err(|e| format!("{}: {e}", net_path.display()))?;
        Ok((repro, netlist))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_case, CaseConfig};
    use crate::script::random_script;

    #[test]
    fn repros_round_trip_through_disk() {
        let case = random_case(
            1,
            &CaseConfig {
                min_cells: 20,
                max_cells: 40,
            },
        );
        let script = random_script(&case, 2, 12);
        let repro = Repro {
            arch: case.params.clone(),
            netlist_file: "case.net".to_string(),
            placement_seed: 99,
            script: script.clone(),
            failure: "synthetic failure for the round-trip test".to_string(),
            original_len: 64,
        };
        let dir = std::env::temp_dir().join(format!("rowfpga-repro-test-{}", std::process::id()));
        let sidecar = repro.save(&dir, "case", &case.netlist).unwrap();
        let (back, netlist) = Repro::load(&sidecar).unwrap();
        assert_eq!(back, repro);
        assert_eq!(netlist.num_cells(), case.netlist.num_cells());
        assert_eq!(back.script, script);
        fs::remove_dir_all(&dir).ok();
    }
}
