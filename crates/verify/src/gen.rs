//! Seeded generation of random fuzz cases: an architecture (row count,
//! channel width, segmentation profile, vertical resources) paired with a
//! random netlist sized to fit it.
//!
//! Everything is deterministic in one `u64` seed, and the architecture is
//! recorded as plain [`ArchParams`] so a failing case can be rebuilt
//! bit-identically from a repro file.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rowfpga_arch::{
    Architecture, BuildArchitectureError, DelayParams, SegmentationScheme, VerticalScheme,
};
use rowfpga_netlist::{generate, GenerateConfig, Netlist};
use rowfpga_obs::json::Json;

/// Bounds on the random netlists a fuzz run draws.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CaseConfig {
    /// Smallest netlist, in cells.
    pub min_cells: usize,
    /// Largest netlist, in cells.
    pub max_cells: usize,
}

impl Default for CaseConfig {
    fn default() -> Self {
        // The issue's fuzzing envelope: designs of 20–400 cells.
        Self {
            min_cells: 20,
            max_cells: 400,
        }
    }
}

/// The plain-data recipe for one fuzzed architecture. Unlike an
/// [`Architecture`] value this is serializable, so repro files can rebuild
/// the exact fabric a failure was found on.
#[derive(Clone, Debug, PartialEq)]
pub struct ArchParams {
    /// Logic rows.
    pub rows: usize,
    /// Columns (including IO columns on each side).
    pub cols: usize,
    /// IO columns per side.
    pub io_columns: usize,
    /// Horizontal tracks per channel.
    pub tracks_per_channel: usize,
    /// Horizontal segmentation profile.
    pub segmentation: SegmentationScheme,
    /// Vertical (feedthrough) resources.
    pub verticals: VerticalScheme,
}

impl ArchParams {
    /// Builds the architecture this recipe describes. Delay parameters are
    /// always the defaults — they shape delays, not structure, and the
    /// oracles only compare the engine against itself.
    ///
    /// # Errors
    ///
    /// Returns the builder's validation error if the recipe is degenerate
    /// (possible only for hand-edited repro files).
    pub fn build(&self) -> Result<Architecture, BuildArchitectureError> {
        Architecture::builder()
            .rows(self.rows)
            .cols(self.cols)
            .io_columns(self.io_columns)
            .tracks_per_channel(self.tracks_per_channel)
            .segmentation(self.segmentation.clone())
            .verticals(self.verticals)
            .delay(DelayParams::default())
            .build()
    }

    /// Records the parameters of an existing architecture.
    pub fn of(arch: &Architecture) -> ArchParams {
        let geom = arch.geometry();
        ArchParams {
            rows: geom.num_rows(),
            cols: geom.num_cols(),
            io_columns: geom.io_columns(),
            tracks_per_channel: arch.tracks_per_channel(),
            segmentation: arch.segmentation().clone(),
            verticals: arch.vertical_scheme(),
        }
    }

    /// Serializes the recipe for a repro file.
    pub fn to_json(&self) -> Json {
        let seg = match &self.segmentation {
            SegmentationScheme::FullLength => Json::obj(vec![("kind", jstr("full_length"))]),
            SegmentationScheme::Uniform { len } => Json::obj(vec![
                ("kind", jstr("uniform")),
                ("len", Json::Num(*len as f64)),
            ]),
            SegmentationScheme::Mixed { lengths } => Json::obj(vec![
                ("kind", jstr("mixed")),
                (
                    "lengths",
                    Json::Arr(lengths.iter().map(|&l| Json::Num(l as f64)).collect()),
                ),
            ]),
            SegmentationScheme::ActelLike { seed } => Json::obj(vec![
                ("kind", jstr("actel_like")),
                // As a decimal string: u64 seeds do not fit in an f64.
                ("seed", jstr(&seed.to_string())),
            ]),
            SegmentationScheme::Explicit { tracks } => Json::obj(vec![
                ("kind", jstr("explicit")),
                (
                    "tracks",
                    Json::Arr(
                        tracks
                            .iter()
                            .map(|t| Json::Arr(t.iter().map(|&b| Json::Num(b as f64)).collect()))
                            .collect(),
                    ),
                ),
            ]),
        };
        let (vkind, vtracks, vspan) = match self.verticals {
            VerticalScheme::Uniform {
                tracks_per_column,
                span,
            } => ("uniform", tracks_per_column, span),
            VerticalScheme::WithLongLines {
                tracks_per_column,
                span,
            } => ("with_long_lines", tracks_per_column, span),
        };
        Json::obj(vec![
            ("rows", Json::Num(self.rows as f64)),
            ("cols", Json::Num(self.cols as f64)),
            ("io_columns", Json::Num(self.io_columns as f64)),
            (
                "tracks_per_channel",
                Json::Num(self.tracks_per_channel as f64),
            ),
            ("segmentation", seg),
            (
                "verticals",
                Json::obj(vec![
                    ("kind", jstr(vkind)),
                    ("tracks_per_column", Json::Num(vtracks as f64)),
                    ("span", Json::Num(vspan as f64)),
                ]),
            ),
        ])
    }

    /// Parses a recipe back from a repro file.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn from_json(j: &Json) -> Result<ArchParams, String> {
        let num = |key: &str| -> Result<usize, String> {
            j.get(key)
                .and_then(Json::as_u64)
                .map(|v| v as usize)
                .ok_or_else(|| format!("arch: missing or non-numeric '{key}'"))
        };
        let seg_j = j.get("segmentation").ok_or("arch: missing segmentation")?;
        let seg_kind = seg_j
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("arch: segmentation missing kind")?;
        let segmentation = match seg_kind {
            "full_length" => SegmentationScheme::FullLength,
            "uniform" => SegmentationScheme::Uniform {
                len: seg_j
                    .get("len")
                    .and_then(Json::as_u64)
                    .ok_or("arch: uniform segmentation missing len")? as usize,
            },
            "mixed" => SegmentationScheme::Mixed {
                lengths: seg_j
                    .get("lengths")
                    .and_then(Json::as_arr)
                    .ok_or("arch: mixed segmentation missing lengths")?
                    .iter()
                    .map(|l| l.as_u64().map(|v| v as usize))
                    .collect::<Option<Vec<_>>>()
                    .ok_or("arch: non-numeric mixed length")?,
            },
            "actel_like" => SegmentationScheme::ActelLike {
                seed: seg_j
                    .get("seed")
                    .and_then(Json::as_str)
                    .and_then(|s| s.parse::<u64>().ok())
                    .ok_or("arch: actel_like segmentation missing seed")?,
            },
            "explicit" => SegmentationScheme::Explicit {
                tracks: seg_j
                    .get("tracks")
                    .and_then(Json::as_arr)
                    .ok_or("arch: explicit segmentation missing tracks")?
                    .iter()
                    .map(|t| {
                        t.as_arr().and_then(|breaks| {
                            breaks
                                .iter()
                                .map(|b| b.as_u64().map(|v| v as usize))
                                .collect::<Option<Vec<_>>>()
                        })
                    })
                    .collect::<Option<Vec<_>>>()
                    .ok_or("arch: malformed explicit tracks")?,
            },
            other => return Err(format!("arch: unknown segmentation kind '{other}'")),
        };
        let vert_j = j.get("verticals").ok_or("arch: missing verticals")?;
        let vkind = vert_j
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("arch: verticals missing kind")?;
        let vtracks = vert_j
            .get("tracks_per_column")
            .and_then(Json::as_u64)
            .ok_or("arch: verticals missing tracks_per_column")? as usize;
        let vspan = vert_j
            .get("span")
            .and_then(Json::as_u64)
            .ok_or("arch: verticals missing span")? as usize;
        let verticals = match vkind {
            "uniform" => VerticalScheme::Uniform {
                tracks_per_column: vtracks,
                span: vspan,
            },
            "with_long_lines" => VerticalScheme::WithLongLines {
                tracks_per_column: vtracks,
                span: vspan,
            },
            other => return Err(format!("arch: unknown vertical kind '{other}'")),
        };
        Ok(ArchParams {
            rows: num("rows")?,
            cols: num("cols")?,
            io_columns: num("io_columns")?,
            tracks_per_channel: num("tracks_per_channel")?,
            segmentation,
            verticals,
        })
    }
}

fn jstr(s: &str) -> Json {
    Json::Str(s.to_string())
}

/// One generated fuzz case: a fabric, a netlist that fits it, and the
/// recipes both were built from.
#[derive(Clone, Debug)]
pub struct FuzzCase {
    /// The seed this case was derived from.
    pub seed: u64,
    /// The fabric recipe (serializable for repros).
    pub params: ArchParams,
    /// The netlist recipe.
    pub gen: GenerateConfig,
    /// The built fabric.
    pub arch: Architecture,
    /// The generated netlist.
    pub netlist: Netlist,
}

/// Generates a random (architecture, netlist) pair, deterministic in
/// `seed`. The netlist always fits the fabric: dimensions are derived from
/// the cell counts via the same sizing math the CLI uses, with utilization,
/// aspect ratio, channel width, segmentation and vertical resources all
/// drawn at random.
pub fn random_case(seed: u64, cfg: &CaseConfig) -> FuzzCase {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_ca5e_f022_1234);
    let num_cells = rng.gen_range(cfg.min_cells.max(8)..=cfg.max_cells.max(cfg.min_cells.max(8)));
    // IO and sequential population: enough slack that logic cells dominate.
    let io_budget = (num_cells / 4).max(4);
    let num_inputs = rng.gen_range(2..=(io_budget / 2).max(2));
    let num_outputs = rng.gen_range(2..=(io_budget / 2).max(2));
    let num_seq = rng.gen_range(0..=(num_cells / 8));
    let gen_cfg = GenerateConfig {
        num_cells,
        num_inputs,
        num_outputs,
        num_seq,
        max_fanin: rng.gen_range(2..=4),
        fanout_skew: rng.gen_range(0.5..2.5),
        locality: rng.gen_range(0.0..0.9),
        seed: rng.gen(),
    };
    let netlist = generate(&gen_cfg);

    let segmentation = match rng.gen_range(0..4) {
        0 => SegmentationScheme::FullLength,
        1 => SegmentationScheme::Uniform {
            len: rng.gen_range(2..=6),
        },
        2 => {
            let n = rng.gen_range(2..=3);
            SegmentationScheme::Mixed {
                lengths: (0..n).map(|_| rng.gen_range(2..=8)).collect(),
            }
        }
        _ => SegmentationScheme::ActelLike { seed: rng.gen() },
    };
    let verticals = {
        let tracks_per_column = rng.gen_range(3..=6);
        let span = rng.gen_range(2..=4);
        if rng.gen_bool(0.5) {
            VerticalScheme::Uniform {
                tracks_per_column,
                span,
            }
        } else {
            VerticalScheme::WithLongLines {
                tracks_per_column,
                span,
            }
        }
    };
    let sizing = rowfpga_core::SizingConfig {
        utilization: rng.gen_range(0.5..0.85),
        aspect: rng.gen_range(1.0..3.0),
        tracks_per_channel: rng.gen_range(10..=30),
        segmentation,
        verticals,
        delay: DelayParams::default(),
    };
    let arch = rowfpga_core::size_architecture(&netlist, &sizing)
        .expect("sized architecture is always buildable");
    let params = ArchParams::of(&arch);
    debug_assert_eq!(params.build().unwrap().stats(), arch.stats());
    FuzzCase {
        seed,
        params,
        gen: gen_cfg,
        arch,
        netlist,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_in_the_seed() {
        let cfg = CaseConfig::default();
        let a = random_case(7, &cfg);
        let b = random_case(7, &cfg);
        assert_eq!(a.params, b.params);
        assert_eq!(a.gen, b.gen);
        assert_eq!(a.netlist.num_cells(), b.netlist.num_cells());
        let c = random_case(8, &cfg);
        assert!(a.params != c.params || a.gen != c.gen);
    }

    #[test]
    fn arch_params_round_trip_through_json() {
        for seed in 0..20 {
            let case = random_case(seed, &CaseConfig::default());
            let j = case.params.to_json();
            let text = j.to_string_pretty();
            let back = ArchParams::from_json(&rowfpga_obs::json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, case.params, "seed {seed}");
            assert_eq!(back.build().unwrap().stats(), case.arch.stats());
        }
    }

    #[test]
    fn generated_netlists_respect_size_bounds() {
        let cfg = CaseConfig {
            min_cells: 20,
            max_cells: 60,
        };
        for seed in 0..10 {
            let case = random_case(seed, &cfg);
            assert!(case.netlist.num_cells() >= 20 && case.netlist.num_cells() <= 60);
        }
    }
}
