//! Structural invariants of a layout, callable from any test.
//!
//! Each check inspects one facet of a (placement, routing) pair against the
//! architecture and netlist and reports the first violation with enough
//! context to act on. They deliberately *re-derive* everything from the
//! per-net route records rather than trusting the routing state's own
//! bookkeeping, so a divergence between the two is caught rather than
//! propagated.

use std::fmt;

use rowfpga_arch::{Architecture, ChannelId};
use rowfpga_netlist::{CellKind, NetId, Netlist};
use rowfpga_place::Placement;
use rowfpga_route::{net_requirements, NetRouteState, RoutingState};
use rowfpga_timing::TimingState;

/// A failed structural invariant.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Which invariant broke.
    pub invariant: &'static str,
    /// What exactly went wrong.
    pub detail: String,
}

impl Violation {
    fn new(invariant: &'static str, detail: String) -> Violation {
        Violation { invariant, detail }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant '{}' violated: {}",
            self.invariant, self.detail
        )
    }
}

impl std::error::Error for Violation {}

/// **Track exclusivity.** Every horizontal and vertical segment is claimed
/// by at most one net, and the ownership derived from the per-net routes
/// agrees exactly with the state's owner arrays in both directions.
pub fn track_exclusivity(
    arch: &Architecture,
    netlist: &Netlist,
    routing: &RoutingState,
) -> Result<(), Violation> {
    const NAME: &str = "track-exclusivity";
    let mut hclaim: Vec<Option<NetId>> = vec![None; arch.num_hsegs()];
    let mut vclaim: Vec<Option<NetId>> = vec![None; arch.num_vsegs()];
    for (net, _) in netlist.nets() {
        let route = routing.route(net);
        for (_, run) in route.hsegs() {
            for &seg in run {
                if let Some(prev) = hclaim[seg.index()] {
                    return Err(Violation::new(
                        NAME,
                        format!("hseg {seg} appears in the routes of both {prev} and {net}"),
                    ));
                }
                hclaim[seg.index()] = Some(net);
            }
        }
        for &seg in route.vsegs() {
            if let Some(prev) = vclaim[seg.index()] {
                return Err(Violation::new(
                    NAME,
                    format!("vseg {seg} appears in the routes of both {prev} and {net}"),
                ));
            }
            vclaim[seg.index()] = Some(net);
        }
    }
    for (i, &derived) in hclaim.iter().enumerate() {
        let seg = rowfpga_arch::HSegId::new(i);
        let recorded = routing.hseg_owner(seg);
        if recorded != derived {
            return Err(Violation::new(
                NAME,
                format!("hseg {seg} owner array says {recorded:?} but routes derive {derived:?}"),
            ));
        }
    }
    for (i, &derived) in vclaim.iter().enumerate() {
        let seg = rowfpga_arch::VSegId::new(i);
        let recorded = routing.vseg_owner(seg);
        if recorded != derived {
            return Err(Violation::new(
                NAME,
                format!("vseg {seg} owner array says {recorded:?} but routes derive {derived:?}"),
            ));
        }
    }
    Ok(())
}

/// **Segmentation legality.** Every assigned horizontal run is a chain of
/// consecutive segments of one track of the recorded channel, and fully
/// covers the span the net was committed to at global-routing time.
pub fn segmentation_legality(
    arch: &Architecture,
    netlist: &Netlist,
    routing: &RoutingState,
) -> Result<(), Violation> {
    const NAME: &str = "segmentation-legality";
    for (net, _) in netlist.nets() {
        let route = routing.route(net);
        for (channel, run) in route.hsegs() {
            if run.is_empty() {
                return Err(Violation::new(
                    NAME,
                    format!("{net} records an empty run in {channel}"),
                ));
            }
            let track = arch.hseg_track(run[0]);
            for pair in run.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                if arch.hseg_channel(b) != *channel
                    || arch.hseg_track(b) != track
                    || arch.hseg_pos(b) != arch.hseg_pos(a) + 1
                {
                    return Err(Violation::new(
                        NAME,
                        format!(
                            "{net} run in {channel} is not consecutive on one track: \
                             {a} (track {:?}, pos {}) then {b} (track {:?}, pos {})",
                            arch.hseg_track(a),
                            arch.hseg_pos(a),
                            arch.hseg_track(b),
                            arch.hseg_pos(b)
                        ),
                    ));
                }
            }
            if arch.hseg_channel(run[0]) != *channel {
                return Err(Violation::new(
                    NAME,
                    format!(
                        "{net} run recorded in {channel} but its segments sit in {}",
                        arch.hseg_channel(run[0])
                    ),
                ));
            }
            let (span_lo, span_hi) = route.span_in(*channel).ok_or_else(|| {
                Violation::new(
                    NAME,
                    format!("{net} routed in {channel} without a recorded span"),
                )
            })?;
            let covered_lo = arch.hseg(run[0]).start();
            let covered_end = arch.hseg(*run.last().unwrap()).end(); // exclusive
            if covered_lo > span_lo || covered_end <= span_hi {
                return Err(Violation::new(
                    NAME,
                    format!(
                        "{net} run in {channel} covers columns {covered_lo}..{covered_end} \
                         but must span {span_lo}..={span_hi}"
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// **Pinmap/site consistency.** The placement is a legal cell↔site
/// bijection with kind-compatible sites and in-palette pinmap choices.
pub fn pinmap_site_consistency(
    arch: &Architecture,
    netlist: &Netlist,
    placement: &Placement,
) -> Result<(), Violation> {
    placement
        .check_invariants_detailed(arch, netlist)
        .map_err(|detail| Violation::new("pinmap-site-consistency", detail))
}

/// **Feedthrough conservation.** A globally routed net spanning several
/// channels owns exactly one vertical chain: all segments in one column,
/// pairwise chained bottom-up, reaching every channel its pins occupy.
/// Single-channel and unrouted nets own no vertical resources at all.
pub fn feedthrough_conservation(
    arch: &Architecture,
    netlist: &Netlist,
    placement: &Placement,
    routing: &RoutingState,
) -> Result<(), Violation> {
    const NAME: &str = "feedthrough-conservation";
    for (net, _) in netlist.nets() {
        let route = routing.route(net);
        let req = net_requirements(arch, netlist, placement, net);
        if route.state() == NetRouteState::Unrouted || !req.needs_vertical() {
            if !route.vsegs().is_empty() || route.vcol().is_some() {
                return Err(Violation::new(
                    NAME,
                    format!(
                        "{net} ({:?}, pins span channels {}..={}) holds {} vertical segment(s)",
                        route.state(),
                        req.chan_min,
                        req.chan_max,
                        route.vsegs().len()
                    ),
                ));
            }
            continue;
        }
        // Globally routed and multi-channel: a non-empty chain in one column.
        let vcol = route.vcol().ok_or_else(|| {
            Violation::new(
                NAME,
                format!(
                    "{net} spans channels {}..={} but has no feedthrough column",
                    req.chan_min, req.chan_max
                ),
            )
        })?;
        if route.vsegs().is_empty() {
            return Err(Violation::new(
                NAME,
                format!("{net} records feedthrough column {vcol} but owns no vertical segments"),
            ));
        }
        let segs: Vec<_> = route.vsegs().iter().map(|&id| arch.vseg(id)).collect();
        for seg in &segs {
            if seg.col() != vcol {
                return Err(Violation::new(
                    NAME,
                    format!(
                        "{net} vertical segment {} sits in column {} but the chain is in {vcol}",
                        seg.id(),
                        seg.col()
                    ),
                ));
            }
        }
        for pair in segs.windows(2) {
            if !pair[0].chains_with(pair[1]) {
                return Err(Violation::new(
                    NAME,
                    format!(
                        "{net} vertical chain breaks between {} and {}",
                        pair[0].id(),
                        pair[1].id()
                    ),
                ));
            }
        }
        for ch in req.chan_min..=req.chan_max {
            let ch = ChannelId::new(ch);
            if !segs.iter().any(|s| s.reaches(ch)) {
                return Err(Violation::new(
                    NAME,
                    format!("{net} vertical chain does not reach required channel {ch}"),
                ));
            }
        }
    }
    Ok(())
}

/// **Non-negative, monotone Elmore delays.** Re-derives a from-scratch
/// timing analysis of the layout and checks the Elmore model's basic sanity
/// properties: every net-sink delay is finite and non-negative, every
/// arrival is finite and non-negative, the worst-case delay is at least
/// every individual arrival involved in it, and arrivals are monotone along
/// combinational edges (a sink's output arrival is never earlier than any
/// of its drivers' arrivals plus the interconnect delay charged to that
/// edge).
pub fn elmore_delays(
    arch: &Architecture,
    netlist: &Netlist,
    placement: &Placement,
    routing: &RoutingState,
) -> Result<(), Violation> {
    const NAME: &str = "elmore-delays";
    const EPS: f64 = 1e-9;
    let timing = TimingState::new(arch, netlist, placement, routing)
        .map_err(|e| Violation::new(NAME, format!("netlist not levelizable: {e}")))?;
    if !(timing.worst().is_finite() && timing.worst() >= 0.0) {
        return Err(Violation::new(
            NAME,
            format!("worst-case delay is {}", timing.worst()),
        ));
    }
    for (cell, _) in netlist.cells() {
        let arr = timing.arrival(cell);
        if !(arr.is_finite() && arr >= 0.0) {
            return Err(Violation::new(NAME, format!("arrival({cell}) is {arr}")));
        }
    }
    for (net, record) in netlist.nets() {
        let delays = timing.net_delays(net);
        if delays.len() != record.fanout() {
            return Err(Violation::new(
                NAME,
                format!(
                    "{net} charges {} sink delays for fanout {}",
                    delays.len(),
                    record.fanout()
                ),
            ));
        }
        let driver_arr = timing.arrival(record.driver().cell);
        for (k, sink) in record.sinks().iter().enumerate() {
            let d = delays[k];
            if !(d.is_finite() && d >= 0.0) {
                return Err(Violation::new(
                    NAME,
                    format!("{net} sink {k} has Elmore delay {d}"),
                ));
            }
            if matches!(netlist.cell(sink.cell).kind(), CellKind::Comb { .. }) {
                let sink_arr = timing.arrival(sink.cell);
                if sink_arr + EPS < driver_arr + d {
                    return Err(Violation::new(
                        NAME,
                        format!(
                            "arrival not monotone on {net}: driver {} arrives at {driver_arr} \
                             + delay {d} > sink {} arrival {sink_arr}",
                            record.driver().cell,
                            sink.cell
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Runs the full invariant library plus the router's own deep verification
/// over a layout, reporting the first violation.
pub fn check_all(
    arch: &Architecture,
    netlist: &Netlist,
    placement: &Placement,
    routing: &RoutingState,
) -> Result<(), Violation> {
    pinmap_site_consistency(arch, netlist, placement)?;
    track_exclusivity(arch, netlist, routing)?;
    segmentation_legality(arch, netlist, routing)?;
    feedthrough_conservation(arch, netlist, placement, routing)?;
    rowfpga_route::verify_routing(routing, arch, netlist, placement)
        .map_err(|e| Violation::new("route-bookkeeping", e.to_string()))?;
    elmore_delays(arch, netlist, placement, routing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_case, CaseConfig};
    use rowfpga_core::{CostConfig, LayoutProblem};
    use rowfpga_place::MoveWeights;
    use rowfpga_route::RouterConfig;

    #[test]
    fn fresh_layouts_satisfy_every_invariant() {
        for seed in 0..6 {
            let case = random_case(
                seed,
                &CaseConfig {
                    min_cells: 20,
                    max_cells: 120,
                },
            );
            let problem = LayoutProblem::new(
                &case.arch,
                &case.netlist,
                RouterConfig::default(),
                CostConfig::default(),
                MoveWeights::default(),
                seed,
            )
            .unwrap();
            check_all(
                &case.arch,
                &case.netlist,
                problem.placement(),
                problem.routing(),
            )
            .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        }
    }
}
