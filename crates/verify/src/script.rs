//! Replayable move scripts.
//!
//! The annealer proposes moves from an RNG, which makes a failing run
//! impossible to shrink: removing one move changes every later draw. A
//! [`MoveScript`] instead records *concrete* operations — site pairs and
//! pinmap targets — that stay legal under any subsequence:
//!
//! * an `Exchange` pairs two same-kind sites; swapping them is legal no
//!   matter which cells (or holes) currently sit there, and
//! * a `Pinmap` records only the *target* palette index; the undo index is
//!   re-read from the live placement at replay time, so dropping an earlier
//!   pinmap move on the same cell cannot corrupt a later one.
//!
//! Scripts replay through [`LayoutProblem::apply_move`], driving the exact
//! same incremental cascade the annealer uses.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rowfpga_arch::{SiteId, SiteKind};
use rowfpga_core::LayoutProblem;
use rowfpga_netlist::{pinmap_palette, CellId};
use rowfpga_place::Move;

use crate::gen::FuzzCase;

/// One recorded operation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ScriptOp {
    /// Exchange the occupants of two same-kind sites, then commit or undo.
    Exchange {
        /// First site index.
        a: usize,
        /// Second site index.
        b: usize,
        /// Whether the move was committed (`true`) or rolled back.
        accept: bool,
    },
    /// Re-pin a cell to palette index `to`, then commit or undo.
    Pinmap {
        /// Cell index.
        cell: usize,
        /// Target palette index.
        to: u16,
        /// Whether the move was committed (`true`) or rolled back.
        accept: bool,
    },
    /// Corrupt the incremental state through a fault-injection hook. Only
    /// present in fault-injection fuzzing; a script containing one *must*
    /// subsequently fail the oracle suite.
    #[cfg(feature = "fault-inject")]
    Fault(rowfpga_core::InjectedFault),
}

impl ScriptOp {
    /// Whether this op commits (vs rolls back) its move. Fault ops report
    /// `true` (they are never rolled back).
    pub fn accepts(&self) -> bool {
        match *self {
            ScriptOp::Exchange { accept, .. } | ScriptOp::Pinmap { accept, .. } => accept,
            #[cfg(feature = "fault-inject")]
            ScriptOp::Fault(_) => true,
        }
    }
}

/// A recorded, replayable move sequence.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MoveScript {
    /// The operations, in replay order.
    pub ops: Vec<ScriptOp>,
}

impl MoveScript {
    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the script is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Draws a random script of `len` operations for `case`, deterministic in
/// `seed`. Mirrors the annealer's move mix (~85% exchanges / 15% pinmaps),
/// including hole translations (an exchange with an empty site) and
/// same-kind IO moves. Roughly 60% of moves are accepted so the replayed
/// trajectory both commits and rolls back work.
pub fn random_script(case: &FuzzCase, seed: u64, len: usize) -> MoveScript {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5c41_f7ed_0000_0001);
    let geom = case.arch.geometry();
    let logic: Vec<usize> = geom
        .sites_of_kind(SiteKind::Logic)
        .map(|s| s.id().index())
        .collect();
    let io: Vec<usize> = geom
        .sites_of_kind(SiteKind::Io)
        .map(|s| s.id().index())
        .collect();
    // Cells whose pinmap palette has more than one entry.
    let repinnable: Vec<(usize, u16)> = case
        .netlist
        .cells()
        .filter_map(|(id, cell)| {
            let n = pinmap_palette(cell.kind()).len();
            (n > 1).then_some((id.index(), n as u16))
        })
        .collect();
    let mut ops = Vec::with_capacity(len);
    while ops.len() < len {
        let accept = rng.gen_bool(0.6);
        if !repinnable.is_empty() && rng.gen_bool(0.15) {
            let (cell, palette) = repinnable[rng.gen_range(0..repinnable.len())];
            ops.push(ScriptOp::Pinmap {
                cell,
                to: rng.gen_range(0..palette),
                accept,
            });
        } else {
            let pool = if !io.is_empty() && rng.gen_bool(0.2) {
                &io
            } else {
                &logic
            };
            if pool.len() < 2 {
                continue;
            }
            let a = pool[rng.gen_range(0..pool.len())];
            let mut b = pool[rng.gen_range(0..pool.len())];
            while b == a {
                b = pool[rng.gen_range(0..pool.len())];
            }
            ops.push(ScriptOp::Exchange { a, b, accept });
        }
    }
    MoveScript { ops }
}

/// Resolves one script op into a concrete [`Move`] against the live
/// placement (re-reading the pinmap undo index). Returns `None` for ops
/// that do not map to a placement move (fault injections).
pub fn op_to_move(op: &ScriptOp, problem: &LayoutProblem) -> Option<Move> {
    match *op {
        ScriptOp::Exchange { a, b, .. } => Some(Move::Exchange {
            a: SiteId::new(a),
            b: SiteId::new(b),
        }),
        ScriptOp::Pinmap { cell, to, .. } => {
            let cell_id = CellId::new(cell);
            Some(Move::Pinmap {
                cell: cell_id,
                from: problem.placement().pinmap_index(cell_id),
                to,
            })
        }
        #[cfg(feature = "fault-inject")]
        ScriptOp::Fault(_) => None,
    }
}

/// Replays `ops` on `problem` through the full incremental cascade,
/// committing or rolling back each move as recorded. Fault ops are injected
/// through the state-corruption hooks.
pub fn replay(problem: &mut LayoutProblem, ops: &[ScriptOp]) {
    use rowfpga_anneal::AnnealProblem;
    for op in ops {
        #[cfg(feature = "fault-inject")]
        if let ScriptOp::Fault(fault) = op {
            problem.inject_fault(fault);
            continue;
        }
        if let Some(mv) = op_to_move(op, problem) {
            let (applied, _) = problem.apply_move(mv);
            if op.accepts() {
                problem.commit(applied);
            } else {
                problem.undo(applied);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_case, CaseConfig};
    use rowfpga_core::{CostConfig, LayoutProblem};
    use rowfpga_place::MoveWeights;
    use rowfpga_route::RouterConfig;

    #[test]
    fn scripts_are_deterministic_and_sized() {
        let case = random_case(3, &CaseConfig::default());
        let a = random_script(&case, 11, 64);
        let b = random_script(&case, 11, 64);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        assert_ne!(a, random_script(&case, 12, 64));
    }

    #[test]
    fn any_subsequence_replays_legally() {
        let case = random_case(
            5,
            &CaseConfig {
                min_cells: 20,
                max_cells: 60,
            },
        );
        let script = random_script(&case, 9, 40);
        // Full script, every other op, and a sparse subsequence must all
        // leave a placement satisfying its invariants.
        for step in [1usize, 2, 7] {
            let ops: Vec<ScriptOp> = script.ops.iter().step_by(step).copied().collect();
            let mut problem = LayoutProblem::new(
                &case.arch,
                &case.netlist,
                RouterConfig::default(),
                CostConfig::default(),
                MoveWeights::default(),
                1,
            )
            .unwrap();
            replay(&mut problem, &ops);
            problem
                .placement()
                .check_invariants_detailed(&case.arch, &case.netlist)
                .unwrap();
            problem.audit().unwrap();
        }
    }
}
