//! Strongly typed identifiers for architectural resources.
//!
//! Every physical resource of the fabric — rows, columns, sites, channels,
//! tracks and routing segments — is referred to by a compact index newtype.
//! The newtypes keep row/column/segment indices from being confused with one
//! another at compile time while remaining `Copy` and cheaply hashable.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u32);

        impl $name {
            /// Wraps a raw index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn new(index: usize) -> Self {
                Self(u32::try_from(index).expect("resource index overflows u32"))
            }

            /// Returns the raw index, suitable for indexing into dense arrays.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// A row of logic-module sites. Row `r` sits between channel `r` (below)
    /// and channel `r + 1` (above).
    RowId,
    "r"
);
id_type!(
    /// A column of the chip. Columns index both site positions within a row
    /// and the vertical routing resources that run across channels.
    ColId,
    "c"
);
id_type!(
    /// A module site: one (row, column) slot that can hold a single cell.
    SiteId,
    "s"
);
id_type!(
    /// A horizontal routing channel. A chip with `R` rows has channels
    /// `0..=R`; channel `c` lies below row `c` and above row `c - 1`.
    ChannelId,
    "ch"
);
id_type!(
    /// A track within a channel (one full-width wiring lane, subdivided into
    /// segments).
    TrackId,
    "t"
);
id_type!(
    /// A horizontal wiring segment, globally indexed across all channels and
    /// tracks.
    HSegId,
    "h"
);
id_type!(
    /// A vertical wiring segment, globally indexed across all columns.
    VSegId,
    "v"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn round_trips_raw_index() {
        let id = HSegId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
    }

    #[test]
    fn debug_and_display_are_tagged() {
        assert_eq!(format!("{:?}", RowId::new(3)), "r3");
        assert_eq!(format!("{}", ChannelId::new(0)), "ch0");
        assert_eq!(format!("{}", VSegId::new(17)), "v17");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        assert!(TrackId::new(1) < TrackId::new(2));
        let set: HashSet<SiteId> = [SiteId::new(1), SiteId::new(1), SiteId::new(2)]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn rejects_indices_wider_than_u32() {
        let _ = ColId::new(usize::MAX);
    }
}
