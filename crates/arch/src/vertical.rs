//! Vertical routing resources.
//!
//! Nets whose pins sit in different channels need vertical wire to cross the
//! rows in between (the *feedthroughs* assigned by global routing, paper
//! §3.3). We model a pool of vertical segments per column; each segment spans
//! an inclusive range of channels and can be tapped, via a cross antifuse, by
//! a horizontal segment in any channel of that range. Two vertical segments
//! in the same column whose spans touch or overlap can be chained through a
//! vertical antifuse, modelling Actel's segmented long vertical tracks.

use crate::ids::{ChannelId, ColId, VSegId};

/// A vertical wiring segment in one column, spanning an inclusive channel
/// range.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VSegment {
    id: VSegId,
    col: u32,
    chan_lo: u32,
    chan_hi: u32,
}

impl VSegment {
    pub(crate) fn new(id: VSegId, col: usize, chan_lo: usize, chan_hi: usize) -> Self {
        assert!(chan_lo < chan_hi, "a vertical segment must cross a row");
        Self {
            id,
            col: col as u32,
            chan_lo: chan_lo as u32,
            chan_hi: chan_hi as u32,
        }
    }

    /// Global identifier of this segment.
    pub fn id(&self) -> VSegId {
        self.id
    }

    /// Column the segment runs in.
    pub fn col(&self) -> ColId {
        ColId::new(self.col as usize)
    }

    /// Lowest channel reachable (inclusive).
    pub fn chan_lo(&self) -> ChannelId {
        ChannelId::new(self.chan_lo as usize)
    }

    /// Highest channel reachable (inclusive).
    pub fn chan_hi(&self) -> ChannelId {
        ChannelId::new(self.chan_hi as usize)
    }

    /// Number of channels the segment can be tapped in.
    pub fn span(&self) -> usize {
        (self.chan_hi - self.chan_lo + 1) as usize
    }

    /// Whether the segment can be tapped in channel `chan`.
    pub fn reaches(&self, chan: ChannelId) -> bool {
        let c = chan.index() as u32;
        self.chan_lo <= c && c <= self.chan_hi
    }

    /// Whether `other` can be chained to `self` with one vertical antifuse:
    /// same column, spans touching or overlapping.
    pub fn chains_with(&self, other: &VSegment) -> bool {
        self.col == other.col && self.chan_lo <= other.chan_hi && other.chan_lo <= self.chan_hi
    }
}

/// How vertical segments are distributed over the columns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerticalScheme {
    /// Every column carries `tracks_per_column` vertical tracks, each cut
    /// into segments spanning `span` channels, with the cut positions
    /// staggered by column and track so that segment boundaries do not align.
    Uniform {
        /// Vertical tracks per column.
        tracks_per_column: usize,
        /// Channels spanned by each segment (≥ 2).
        span: usize,
    },
    /// Like `Uniform` but the last track of each column is one full-height
    /// segment (a long vertical track), trading capacity for antifuse-free
    /// long hops.
    WithLongLines {
        /// Vertical tracks per column, including the long-line track.
        tracks_per_column: usize,
        /// Channels spanned by the segmented tracks' segments (≥ 2).
        span: usize,
    },
}

impl VerticalScheme {
    /// Vertical tracks per column under this scheme.
    pub fn tracks_per_column(&self) -> usize {
        match *self {
            VerticalScheme::Uniform {
                tracks_per_column, ..
            }
            | VerticalScheme::WithLongLines {
                tracks_per_column, ..
            } => tracks_per_column,
        }
    }

    /// Generates the vertical segments of all columns of a chip with
    /// `num_channels` channels and `cols` columns, assigning consecutive ids
    /// from 0. Returns a per-column list of segments.
    pub(crate) fn build(&self, cols: usize, num_channels: usize) -> Vec<Vec<VSegment>> {
        let (tracks, span, long_lines) = match *self {
            VerticalScheme::Uniform {
                tracks_per_column,
                span,
            } => (tracks_per_column, span.max(2), false),
            VerticalScheme::WithLongLines {
                tracks_per_column,
                span,
            } => (tracks_per_column, span.max(2), true),
        };
        let mut next = 0usize;
        let mut by_col = Vec::with_capacity(cols);
        for col in 0..cols {
            let mut segs = Vec::new();
            for t in 0..tracks {
                if long_lines && t + 1 == tracks && num_channels >= 2 {
                    segs.push(VSegment::new(VSegId::new(next), col, 0, num_channels - 1));
                    next += 1;
                    continue;
                }
                // Stagger the phase so cuts differ across columns and tracks.
                let step = span - 1; // overlap consecutive segments by 1 channel
                let phase = (col + t * 2) % step.max(1);
                let mut lo = 0usize;
                let mut first = true;
                while lo + 1 < num_channels {
                    let hi = if first && phase > 0 {
                        (lo + phase).min(num_channels - 1).max(lo + 1)
                    } else {
                        (lo + span - 1).min(num_channels - 1)
                    };
                    first = false;
                    segs.push(VSegment::new(VSegId::new(next), col, lo, hi));
                    next += 1;
                    if hi == num_channels - 1 {
                        break;
                    }
                    lo = hi; // overlap by one channel so chaining is possible
                }
            }
            by_col.push(segs);
        }
        by_col
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reaches_and_span() {
        let v = VSegment::new(VSegId::new(0), 3, 1, 4);
        assert_eq!(v.span(), 4);
        assert!(v.reaches(ChannelId::new(1)));
        assert!(v.reaches(ChannelId::new(4)));
        assert!(!v.reaches(ChannelId::new(0)));
        assert!(!v.reaches(ChannelId::new(5)));
        assert_eq!(v.col(), ColId::new(3));
    }

    #[test]
    fn chaining_requires_same_column_and_contact() {
        let a = VSegment::new(VSegId::new(0), 2, 0, 2);
        let b = VSegment::new(VSegId::new(1), 2, 2, 4);
        let c = VSegment::new(VSegId::new(2), 2, 3, 5);
        let d = VSegment::new(VSegId::new(3), 5, 2, 4);
        assert!(a.chains_with(&b)); // touch at channel 2
        assert!(b.chains_with(&a));
        assert!(!a.chains_with(&c)); // gap
        assert!(!a.chains_with(&d)); // different column
    }

    #[test]
    fn uniform_covers_every_channel_in_every_column() {
        let scheme = VerticalScheme::Uniform {
            tracks_per_column: 2,
            span: 3,
        };
        let by_col = scheme.build(6, 9);
        assert_eq!(by_col.len(), 6);
        for segs in &by_col {
            for chan in 0..9 {
                assert!(
                    segs.iter().any(|s| s.reaches(ChannelId::new(chan))),
                    "channel {chan} unreachable"
                );
            }
            // chains_with must agree with span overlap for same-column pairs
            for a in segs {
                for b in segs {
                    let overlap = a.chan_lo().index() <= b.chan_hi().index()
                        && b.chan_lo().index() <= a.chan_hi().index();
                    assert_eq!(a.chains_with(b), overlap);
                }
            }
        }
    }

    #[test]
    fn segments_within_a_column_chain_into_full_height() {
        // Each track's consecutive segments overlap by one channel, so a
        // greedy chain can always cross the whole chip.
        let scheme = VerticalScheme::Uniform {
            tracks_per_column: 1,
            span: 3,
        };
        for col_segs in scheme.build(4, 11) {
            let mut reach = col_segs[0].chan_hi().index();
            assert_eq!(col_segs[0].chan_lo().index(), 0);
            for s in &col_segs[1..] {
                assert!(s.chan_lo().index() <= reach, "gap in vertical track");
                reach = reach.max(s.chan_hi().index());
            }
            assert_eq!(reach, 10);
        }
    }

    #[test]
    fn long_line_variant_adds_full_height_segment() {
        let scheme = VerticalScheme::WithLongLines {
            tracks_per_column: 3,
            span: 3,
        };
        for segs in scheme.build(5, 7) {
            assert!(segs
                .iter()
                .any(|s| s.chan_lo().index() == 0 && s.chan_hi().index() == 6));
        }
    }

    #[test]
    fn ids_are_globally_unique_and_dense() {
        let scheme = VerticalScheme::Uniform {
            tracks_per_column: 2,
            span: 4,
        };
        let by_col = scheme.build(5, 9);
        let mut ids: Vec<usize> = by_col.iter().flatten().map(|s| s.id().index()).collect();
        ids.sort_unstable();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(i, *id);
        }
    }
}
