//! Electrical parameters of the fabric.
//!
//! Antifuse interconnect delay is dominated by the programmed antifuses'
//! series resistance: each horizontal, cross or vertical antifuse on a path
//! adds an RC stage. The timing crate evaluates Elmore delay over the exact
//! RC tree of an embedded net (paper §3.5); these parameters define the tree
//! element values.
//!
//! All times are in picoseconds, resistances in ohms and capacitances in
//! femtofarads internally scaled so that `r * c` yields picoseconds
//! (Ω·fF = 10⁻¹⁵·10³ s = 10⁻³ ps; we fold the scale into the constants so
//! users can treat the products as picoseconds directly).

/// Resistance, capacitance and intrinsic-delay constants of the fabric.
///
/// Defaults approximate a mid-1990s 1.0 µm antifuse process: antifuse on-state
/// resistance of a few hundred ohms dominates metal wire resistance, and
/// module intrinsic delays sit in the low nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DelayParams {
    /// Wire resistance per column pitch (Ω).
    pub r_wire: f64,
    /// Wire capacitance per column pitch (such that Ω × unit = ps).
    pub c_wire: f64,
    /// On-state resistance of a programmed antifuse (Ω).
    pub r_antifuse: f64,
    /// Capacitance added by a programmed antifuse.
    pub c_antifuse: f64,
    /// Output driver resistance of a logic module (Ω).
    pub r_driver: f64,
    /// Input pin load of a logic module.
    pub c_input: f64,
    /// Intrinsic delay of a combinational module (ps).
    pub t_comb: f64,
    /// Clock-to-output delay of a sequential module (ps).
    pub t_seq: f64,
    /// Delay of an I/O module (pad driver / receiver) (ps).
    pub t_io: f64,
}

impl DelayParams {
    /// Parameters approximating a 1.0 µm antifuse process.
    pub fn act_1um() -> Self {
        Self {
            r_wire: 2.0,
            c_wire: 0.06,
            r_antifuse: 500.0,
            c_antifuse: 0.01,
            r_driver: 1_500.0,
            c_input: 0.02,
            t_comb: 3_000.0,
            t_seq: 3_500.0,
            t_io: 2_000.0,
        }
    }

    /// A fabric with slow (high-resistance) antifuses, exaggerating the
    /// penalty of many-segment paths; useful in tests and ablations.
    pub fn slow_antifuse() -> Self {
        Self {
            r_antifuse: 2_500.0,
            ..Self::act_1um()
        }
    }

    /// Validates that every constant is finite and non-negative and the
    /// intrinsic delays are positive.
    pub fn is_valid(&self) -> bool {
        let all = [
            self.r_wire,
            self.c_wire,
            self.r_antifuse,
            self.c_antifuse,
            self.r_driver,
            self.c_input,
            self.t_comb,
            self.t_seq,
            self.t_io,
        ];
        all.iter().all(|v| v.is_finite() && *v >= 0.0)
            && self.t_comb > 0.0
            && self.t_seq > 0.0
            && self.t_io > 0.0
    }
}

impl Default for DelayParams {
    fn default() -> Self {
        Self::act_1um()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(DelayParams::default().is_valid());
        assert!(DelayParams::slow_antifuse().is_valid());
    }

    #[test]
    fn antifuse_resistance_dominates_wire_resistance() {
        // The premise of the paper's timing argument: antifuse count matters
        // more than wire length. Sanity-check the default constants encode
        // that (one antifuse is worth many columns of wire).
        let p = DelayParams::default();
        assert!(p.r_antifuse > 50.0 * p.r_wire);
    }

    #[test]
    fn invalid_params_are_detected() {
        let p = DelayParams {
            t_comb: 0.0,
            ..DelayParams::default()
        };
        assert!(!p.is_valid());
        let q = DelayParams {
            r_wire: f64::NAN,
            ..DelayParams::default()
        };
        assert!(!q.is_valid());
        let r = DelayParams {
            c_input: -1.0,
            ..DelayParams::default()
        };
        assert!(!r.is_valid());
    }
}
