//! Text format for architecture descriptions.
//!
//! A minimal line-oriented format so fabrics can be versioned and shared:
//!
//! ```text
//! # rowfpga architecture
//! rows 8
//! cols 20
//! io_columns 2
//! tracks_per_channel 24
//! segmentation actel 7          # or: full | uniform L | mixed L1 L2 … |
//!                               #     explicit B,B|B|…  (breaks per track)
//! verticals longlines 4 3       # or: uniform TRACKS SPAN
//! delay r_wire 2.0              # any DelayParams field; omitted = default
//! ```
//!
//! [`write_architecture`] emits exactly this format and
//! `parse_architecture(&write_architecture(&a))` reproduces the fabric.

use std::error::Error;
use std::fmt;

use crate::architecture::Architecture;
use crate::delay::DelayParams;
use crate::error::BuildArchitectureError;
use crate::segmentation::SegmentationScheme;
use crate::vertical::VerticalScheme;

/// Errors raised by [`parse_architecture`].
#[derive(Clone, Debug, PartialEq)]
pub enum ParseArchitectureError {
    /// A line had an unknown directive or malformed fields.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// The description parsed but the fabric is invalid.
    Build(BuildArchitectureError),
}

impl fmt::Display for ParseArchitectureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseArchitectureError::Malformed { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            ParseArchitectureError::Build(e) => write!(f, "invalid architecture: {e}"),
        }
    }
}

impl Error for ParseArchitectureError {}

impl From<BuildArchitectureError> for ParseArchitectureError {
    fn from(e: BuildArchitectureError) -> Self {
        ParseArchitectureError::Build(e)
    }
}

fn bad(line: usize, reason: impl Into<String>) -> ParseArchitectureError {
    ParseArchitectureError::Malformed {
        line,
        reason: reason.into(),
    }
}

fn num<T: std::str::FromStr>(
    line: usize,
    field: &str,
    v: Option<&str>,
) -> Result<T, ParseArchitectureError> {
    let v = v.ok_or_else(|| bad(line, format!("`{field}` needs a value")))?;
    v.parse()
        .map_err(|_| bad(line, format!("bad value `{v}` for `{field}`")))
}

/// Parses an architecture description.
///
/// # Errors
///
/// Returns [`ParseArchitectureError`] for malformed directives or an
/// invalid fabric.
pub fn parse_architecture(text: &str) -> Result<Architecture, ParseArchitectureError> {
    let mut builder = Architecture::builder();
    let mut delay = DelayParams::default();

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut f = line.split_whitespace();
        let directive = f.next().expect("non-empty line has a first token");
        match directive {
            "rows" => builder = builder.rows(num(line_no, "rows", f.next())?),
            "cols" => builder = builder.cols(num(line_no, "cols", f.next())?),
            "io_columns" => builder = builder.io_columns(num(line_no, "io_columns", f.next())?),
            "tracks_per_channel" => {
                builder = builder.tracks_per_channel(num(line_no, "tracks_per_channel", f.next())?)
            }
            "segmentation" => {
                let kind = f
                    .next()
                    .ok_or_else(|| bad(line_no, "`segmentation` needs a scheme"))?;
                let scheme = match kind {
                    "full" => SegmentationScheme::FullLength,
                    "uniform" => SegmentationScheme::Uniform {
                        len: num(line_no, "uniform length", f.next())?,
                    },
                    "mixed" => {
                        let lengths: Result<Vec<usize>, _> =
                            f.map(|x| num(line_no, "mixed length", Some(x))).collect();
                        let lengths = lengths?;
                        if lengths.is_empty() {
                            return Err(bad(line_no, "`mixed` needs at least one length"));
                        }
                        SegmentationScheme::Mixed { lengths }
                    }
                    "actel" => SegmentationScheme::ActelLike {
                        seed: num(line_no, "actel seed", f.next())?,
                    },
                    "explicit" => {
                        let spec = f
                            .next()
                            .ok_or_else(|| bad(line_no, "`explicit` needs track breaks"))?;
                        let tracks: Result<Vec<Vec<usize>>, _> = spec
                            .split('|')
                            .map(|t| {
                                if t.is_empty() {
                                    Ok(Vec::new())
                                } else {
                                    t.split(',')
                                        .map(|b| num(line_no, "break", Some(b)))
                                        .collect()
                                }
                            })
                            .collect();
                        SegmentationScheme::Explicit { tracks: tracks? }
                    }
                    other => return Err(bad(line_no, format!("unknown segmentation `{other}`"))),
                };
                builder = builder.segmentation(scheme);
            }
            "verticals" => {
                let kind = f
                    .next()
                    .ok_or_else(|| bad(line_no, "`verticals` needs a scheme"))?;
                let tracks = num(line_no, "vertical tracks", f.next())?;
                let span = num(line_no, "vertical span", f.next())?;
                let scheme = match kind {
                    "uniform" => VerticalScheme::Uniform {
                        tracks_per_column: tracks,
                        span,
                    },
                    "longlines" => VerticalScheme::WithLongLines {
                        tracks_per_column: tracks,
                        span,
                    },
                    other => return Err(bad(line_no, format!("unknown verticals `{other}`"))),
                };
                builder = builder.verticals(scheme);
            }
            "delay" => {
                let field = f
                    .next()
                    .ok_or_else(|| bad(line_no, "`delay` needs a field name"))?;
                let value: f64 = num(line_no, field, f.next())?;
                match field {
                    "r_wire" => delay.r_wire = value,
                    "c_wire" => delay.c_wire = value,
                    "r_antifuse" => delay.r_antifuse = value,
                    "c_antifuse" => delay.c_antifuse = value,
                    "r_driver" => delay.r_driver = value,
                    "c_input" => delay.c_input = value,
                    "t_comb" => delay.t_comb = value,
                    "t_seq" => delay.t_seq = value,
                    "t_io" => delay.t_io = value,
                    other => return Err(bad(line_no, format!("unknown delay field `{other}`"))),
                }
            }
            other => return Err(bad(line_no, format!("unknown directive `{other}`"))),
        }
    }
    Ok(builder.delay(delay).build()?)
}

/// Serializes an architecture in the format parsed by
/// [`parse_architecture`].
pub fn write_architecture(arch: &Architecture) -> String {
    use std::fmt::Write as _;
    let g = arch.geometry();
    let mut out = String::from("# rowfpga architecture\n");
    let _ = writeln!(out, "rows {}", g.num_rows());
    let _ = writeln!(out, "cols {}", g.num_cols());
    let _ = writeln!(out, "io_columns {}", g.io_columns());
    let _ = writeln!(out, "tracks_per_channel {}", arch.tracks_per_channel());
    match arch.segmentation() {
        SegmentationScheme::FullLength => {
            let _ = writeln!(out, "segmentation full");
        }
        SegmentationScheme::Uniform { len } => {
            let _ = writeln!(out, "segmentation uniform {len}");
        }
        SegmentationScheme::Mixed { lengths } => {
            let joined: Vec<String> = lengths.iter().map(usize::to_string).collect();
            let _ = writeln!(out, "segmentation mixed {}", joined.join(" "));
        }
        SegmentationScheme::ActelLike { seed } => {
            let _ = writeln!(out, "segmentation actel {seed}");
        }
        SegmentationScheme::Explicit { tracks } => {
            let spec: Vec<String> = tracks
                .iter()
                .map(|t| t.iter().map(usize::to_string).collect::<Vec<_>>().join(","))
                .collect();
            let _ = writeln!(out, "segmentation explicit {}", spec.join("|"));
        }
    }
    match arch.vertical_scheme() {
        VerticalScheme::Uniform {
            tracks_per_column,
            span,
        } => {
            let _ = writeln!(out, "verticals uniform {tracks_per_column} {span}");
        }
        VerticalScheme::WithLongLines {
            tracks_per_column,
            span,
        } => {
            let _ = writeln!(out, "verticals longlines {tracks_per_column} {span}");
        }
    }
    let d = arch.delay();
    let _ = writeln!(out, "delay r_wire {}", d.r_wire);
    let _ = writeln!(out, "delay c_wire {}", d.c_wire);
    let _ = writeln!(out, "delay r_antifuse {}", d.r_antifuse);
    let _ = writeln!(out, "delay c_antifuse {}", d.c_antifuse);
    let _ = writeln!(out, "delay r_driver {}", d.r_driver);
    let _ = writeln!(out, "delay c_input {}", d.c_input);
    let _ = writeln!(out, "delay t_comb {}", d.t_comb);
    let _ = writeln!(out, "delay t_seq {}", d.t_seq);
    let _ = writeln!(out, "delay t_io {}", d.t_io);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ChannelId;

    const SAMPLE: &str = "\
# toy fabric
rows 3
cols 12
io_columns 2
tracks_per_channel 6
segmentation mixed 2 4
verticals uniform 2 3
delay r_antifuse 750
";

    #[test]
    fn parses_sample() {
        let a = parse_architecture(SAMPLE).unwrap();
        assert_eq!(a.geometry().num_rows(), 3);
        assert_eq!(a.geometry().num_cols(), 12);
        assert_eq!(a.tracks_per_channel(), 6);
        assert_eq!(
            a.segmentation(),
            &SegmentationScheme::Mixed {
                lengths: vec![2, 4]
            }
        );
        assert_eq!(a.delay().r_antifuse, 750.0);
        // unspecified delay fields keep defaults
        assert_eq!(a.delay().r_wire, DelayParams::default().r_wire);
    }

    #[test]
    fn round_trips_every_scheme() {
        for scheme in [
            SegmentationScheme::FullLength,
            SegmentationScheme::Uniform { len: 3 },
            SegmentationScheme::Mixed {
                lengths: vec![2, 4, 8],
            },
            SegmentationScheme::ActelLike { seed: 99 },
            SegmentationScheme::Explicit {
                tracks: vec![vec![4, 8], vec![], vec![6]],
            },
        ] {
            let a = Architecture::builder()
                .rows(2)
                .cols(12)
                .io_columns(1)
                .tracks_per_channel(3)
                .segmentation(scheme)
                .verticals(VerticalScheme::WithLongLines {
                    tracks_per_column: 2,
                    span: 3,
                })
                .build()
                .unwrap();
            let text = write_architecture(&a);
            let b = parse_architecture(&text).unwrap();
            assert_eq!(a.segmentation(), b.segmentation());
            assert_eq!(a.num_hsegs(), b.num_hsegs());
            assert_eq!(a.num_vsegs(), b.num_vsegs());
            assert_eq!(a.delay(), b.delay());
            for c in 0..a.geometry().num_channels() {
                assert_eq!(
                    a.channel_tracks(ChannelId::new(c)),
                    b.channel_tracks(ChannelId::new(c))
                );
            }
        }
    }

    #[test]
    fn reports_malformed_lines() {
        for (text, needle) in [
            ("rows\n", "needs a value"),
            ("rows x\n", "bad value"),
            ("frobnicate 3\n", "unknown directive"),
            ("segmentation bogus\n", "unknown segmentation"),
            ("segmentation mixed\n", "at least one length"),
            ("verticals spiral 2 3\n", "unknown verticals"),
            ("delay r_flux 3\n", "unknown delay field"),
        ] {
            let err = parse_architecture(text).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "`{text}` gave `{err}`, wanted `{needle}`"
            );
        }
    }

    #[test]
    fn build_errors_are_wrapped() {
        let err = parse_architecture("rows 0\n").unwrap_err();
        assert!(matches!(err, ParseArchitectureError::Build(_)));
    }
}
