//! Errors raised while constructing an [`crate::Architecture`].

use std::error::Error;
use std::fmt;

/// Reasons an architecture description can be rejected by
/// [`crate::ArchitectureBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildArchitectureError {
    /// The chip must have at least one row.
    NoRows,
    /// The chip must have at least one non-I/O column.
    NoLogicColumns {
        /// Total columns requested.
        cols: usize,
        /// I/O columns requested at each end.
        io_columns: usize,
    },
    /// Channels must carry at least one track.
    NoTracks,
    /// Columns must carry at least one vertical track.
    NoVerticalTracks,
    /// The delay parameters contain non-finite or negative values.
    InvalidDelayParams,
}

impl fmt::Display for BuildArchitectureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildArchitectureError::NoRows => write!(f, "chip must have at least one row"),
            BuildArchitectureError::NoLogicColumns { cols, io_columns } => write!(
                f,
                "chip with {cols} columns and {io_columns} I/O columns per side has no logic columns"
            ),
            BuildArchitectureError::NoTracks => {
                write!(f, "channels must carry at least one track")
            }
            BuildArchitectureError::NoVerticalTracks => {
                write!(f, "columns must carry at least one vertical track")
            }
            BuildArchitectureError::InvalidDelayParams => {
                write!(f, "delay parameters must be finite and non-negative")
            }
        }
    }
}

impl Error for BuildArchitectureError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_unpunctuated() {
        for e in [
            BuildArchitectureError::NoRows,
            BuildArchitectureError::NoLogicColumns {
                cols: 4,
                io_columns: 2,
            },
            BuildArchitectureError::NoTracks,
            BuildArchitectureError::NoVerticalTracks,
            BuildArchitectureError::InvalidDelayParams,
        ] {
            let msg = e.to_string();
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<BuildArchitectureError>();
    }
}
