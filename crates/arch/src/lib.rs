//! Row-based FPGA architecture model.
//!
//! This crate models the physical fabric of a row-based, antifuse-programmed
//! FPGA in the style of the Actel ACT family, the target of Nag & Rutenbar,
//! *Performance-Driven Simultaneous Place and Route for Row-Based FPGAs*
//! (DAC 1994):
//!
//! * rows of logic-module **sites** separated by horizontal routing
//!   **channels** (a chip with `R` rows has `R + 1` channels);
//! * each channel contains a fixed number of **tracks**, each track divided
//!   into **horizontal segments** by a [`SegmentationScheme`]; adjacent
//!   segments on one track can be joined by programming a *horizontal
//!   antifuse*;
//! * each column carries **vertical segments** spanning ranges of channels
//!   (feedthrough resources); vertical segments connect to horizontal
//!   segments through *cross antifuses*, and consecutive vertical segments in
//!   one column can be chained through a *vertical antifuse*;
//! * every programmed antifuse adds series resistance and capacitance, so a
//!   path's delay depends on the *number of antifuses*, not just its length
//!   ([`DelayParams`]).
//!
//! The central type is [`Architecture`], an immutable description consumed by
//! the placement, routing and timing crates. Build one with
//! [`Architecture::builder`]:
//!
//! ```
//! use rowfpga_arch::{Architecture, SegmentationScheme, VerticalScheme};
//!
//! # fn main() -> Result<(), rowfpga_arch::BuildArchitectureError> {
//! let arch = Architecture::builder()
//!     .rows(8)
//!     .cols(20)
//!     .io_columns(2)
//!     .tracks_per_channel(12)
//!     .segmentation(SegmentationScheme::ActelLike { seed: 7 })
//!     .verticals(VerticalScheme::Uniform { tracks_per_column: 3, span: 3 })
//!     .build()?;
//! assert_eq!(arch.geometry().num_channels(), 9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod architecture;
mod delay;
mod error;
mod file;
mod geometry;
mod ids;
mod segmentation;
mod vertical;

pub use architecture::{Architecture, ArchitectureBuilder, ArchitectureStats};
pub use delay::DelayParams;
pub use error::BuildArchitectureError;
pub use file::{parse_architecture, write_architecture, ParseArchitectureError};
pub use geometry::{Geometry, Site, SiteKind};
pub use ids::{ChannelId, ColId, HSegId, RowId, SiteId, TrackId, VSegId};
pub use segmentation::{HSegment, SegmentationScheme, Track};
pub use vertical::{VSegment, VerticalScheme};
