//! The assembled, immutable architecture description.

use crate::delay::DelayParams;
use crate::error::BuildArchitectureError;
use crate::geometry::Geometry;
use crate::ids::{ChannelId, ColId, HSegId, TrackId, VSegId};
use crate::segmentation::{build_channel_tracks, HSegment, SegmentationScheme, Track};
use crate::vertical::{VSegment, VerticalScheme};

/// Where a horizontal segment lives: its channel, track and position within
/// the track.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct HSegLocation {
    pub channel: ChannelId,
    pub track: TrackId,
    pub pos: u32,
}

/// A complete row-based FPGA fabric: geometry, segmented channels, vertical
/// segment pools and electrical parameters.
///
/// `Architecture` is immutable once built; the layout engines treat it as a
/// shared read-only resource graph. Construct one with
/// [`Architecture::builder`], or derive a right-sized chip for a netlist with
/// [`Architecture::builder`] plus your own sizing, and re-target an existing
/// description to a different track count with [`Architecture::with_tracks`]
/// (the operation behind the paper's Table 2 track-minimization experiment).
#[derive(Clone, Debug)]
pub struct Architecture {
    geometry: Geometry,
    delay: DelayParams,
    segmentation: SegmentationScheme,
    vertical_scheme: VerticalScheme,
    tracks_per_channel: usize,
    /// `channels[c]` = tracks of channel `c`.
    channels: Vec<Vec<Track>>,
    /// All horizontal segments, dense by [`HSegId`].
    hsegs: Vec<HSegment>,
    /// Location of each horizontal segment, dense by [`HSegId`].
    hseg_locs: Vec<HSegLocation>,
    /// `verticals[col]` = vertical segments of column `col`, ordered by
    /// (track, channel) of generation.
    verticals: Vec<Vec<VSegment>>,
    /// All vertical segments, dense by [`VSegId`].
    vsegs: Vec<VSegment>,
}

impl Architecture {
    /// Starts building an architecture.
    pub fn builder() -> ArchitectureBuilder {
        ArchitectureBuilder::default()
    }

    /// The chip floorplan.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The fabric's electrical parameters.
    pub fn delay(&self) -> &DelayParams {
        &self.delay
    }

    /// The segmentation scheme the channels were generated from.
    pub fn segmentation(&self) -> &SegmentationScheme {
        &self.segmentation
    }

    /// The vertical-resource scheme the columns were generated from.
    pub fn vertical_scheme(&self) -> VerticalScheme {
        self.vertical_scheme
    }

    /// Tracks in every channel.
    pub fn tracks_per_channel(&self) -> usize {
        self.tracks_per_channel
    }

    /// The tracks of channel `chan`.
    ///
    /// # Panics
    ///
    /// Panics if `chan` is out of range.
    pub fn channel_tracks(&self, chan: ChannelId) -> &[Track] {
        &self.channels[chan.index()]
    }

    /// Total number of horizontal segments on the chip.
    pub fn num_hsegs(&self) -> usize {
        self.hsegs.len()
    }

    /// Total number of vertical segments on the chip.
    pub fn num_vsegs(&self) -> usize {
        self.vsegs.len()
    }

    /// Looks up a horizontal segment.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn hseg(&self, id: HSegId) -> &HSegment {
        &self.hsegs[id.index()]
    }

    /// The channel a horizontal segment belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn hseg_channel(&self, id: HSegId) -> ChannelId {
        self.hseg_locs[id.index()].channel
    }

    /// The track (within its channel) a horizontal segment belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn hseg_track(&self, id: HSegId) -> TrackId {
        self.hseg_locs[id.index()].track
    }

    /// Position of the segment within its track (0 = leftmost).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn hseg_pos(&self, id: HSegId) -> usize {
        self.hseg_locs[id.index()].pos as usize
    }

    /// Looks up a vertical segment.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn vseg(&self, id: VSegId) -> &VSegment {
        &self.vsegs[id.index()]
    }

    /// The vertical segments available in column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn vsegs_at(&self, col: ColId) -> &[VSegment] {
        &self.verticals[col.index()]
    }

    /// Iterates over all horizontal segments.
    pub fn hsegs(&self) -> impl Iterator<Item = &HSegment> + '_ {
        self.hsegs.iter()
    }

    /// Iterates over all vertical segments.
    pub fn vsegs(&self) -> impl Iterator<Item = &VSegment> + '_ {
        self.vsegs.iter()
    }

    /// Mean horizontal segment length in columns (used by delay estimation
    /// for unembedded nets).
    pub fn mean_hseg_len(&self) -> f64 {
        self.segmentation.mean_segment_len(self.geometry.num_cols())
    }

    /// Rebuilds this architecture with a different number of tracks per
    /// channel, keeping everything else identical.
    ///
    /// This is the knob the wirability experiment (paper Table 2) turns: the
    /// minimum `tracks` at which a flow still achieves 100 % routing is its
    /// required channel width.
    ///
    /// # Errors
    ///
    /// Returns an error if `tracks` is zero.
    pub fn with_tracks(&self, tracks: usize) -> Result<Architecture, BuildArchitectureError> {
        ArchitectureBuilder {
            rows: self.geometry.num_rows(),
            cols: self.geometry.num_cols(),
            io_columns: self.geometry.io_columns(),
            tracks_per_channel: tracks,
            segmentation: self.segmentation.clone(),
            vertical_scheme: self.vertical_scheme,
            delay: self.delay,
        }
        .build()
    }

    /// Summary statistics of the fabric's routing resources.
    pub fn stats(&self) -> ArchitectureStats {
        let total_track_len: usize = self.hsegs.iter().map(|s| s.len()).sum();
        ArchitectureStats {
            num_sites: self.geometry.num_sites(),
            num_logic_sites: self.geometry.num_logic_sites(),
            num_io_sites: self.geometry.num_io_sites(),
            num_channels: self.geometry.num_channels(),
            tracks_per_channel: self.tracks_per_channel,
            num_hsegs: self.hsegs.len(),
            num_vsegs: self.vsegs.len(),
            mean_hseg_len: if self.hsegs.is_empty() {
                0.0
            } else {
                total_track_len as f64 / self.hsegs.len() as f64
            },
        }
    }
}

/// Aggregate resource counts of an [`Architecture`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArchitectureStats {
    /// Total module sites.
    pub num_sites: usize,
    /// Logic-module sites.
    pub num_logic_sites: usize,
    /// I/O-module sites.
    pub num_io_sites: usize,
    /// Horizontal channels.
    pub num_channels: usize,
    /// Tracks per channel.
    pub tracks_per_channel: usize,
    /// Horizontal segments in total.
    pub num_hsegs: usize,
    /// Vertical segments in total.
    pub num_vsegs: usize,
    /// Mean horizontal segment length, in columns.
    pub mean_hseg_len: f64,
}

/// Builder for [`Architecture`].
///
/// All knobs have workable defaults for a small chip; call
/// [`ArchitectureBuilder::build`] to validate and assemble.
#[derive(Clone, Debug)]
pub struct ArchitectureBuilder {
    rows: usize,
    cols: usize,
    io_columns: usize,
    tracks_per_channel: usize,
    segmentation: SegmentationScheme,
    vertical_scheme: VerticalScheme,
    delay: DelayParams,
}

impl Default for ArchitectureBuilder {
    fn default() -> Self {
        Self {
            rows: 8,
            cols: 16,
            io_columns: 1,
            tracks_per_channel: 12,
            segmentation: SegmentationScheme::ActelLike { seed: 1 },
            vertical_scheme: VerticalScheme::Uniform {
                tracks_per_column: 3,
                span: 3,
            },
            delay: DelayParams::default(),
        }
    }
}

impl ArchitectureBuilder {
    /// Number of logic rows.
    pub fn rows(mut self, rows: usize) -> Self {
        self.rows = rows;
        self
    }

    /// Number of columns.
    pub fn cols(mut self, cols: usize) -> Self {
        self.cols = cols;
        self
    }

    /// I/O columns reserved at each end of every row.
    pub fn io_columns(mut self, io_columns: usize) -> Self {
        self.io_columns = io_columns;
        self
    }

    /// Tracks per channel (overridden by an
    /// [`SegmentationScheme::Explicit`] scheme's track count).
    pub fn tracks_per_channel(mut self, tracks: usize) -> Self {
        self.tracks_per_channel = tracks;
        self
    }

    /// Segmentation scheme for every channel.
    pub fn segmentation(mut self, scheme: SegmentationScheme) -> Self {
        self.segmentation = scheme;
        self
    }

    /// Vertical segment distribution.
    pub fn verticals(mut self, scheme: VerticalScheme) -> Self {
        self.vertical_scheme = scheme;
        self
    }

    /// Electrical parameters.
    pub fn delay(mut self, delay: DelayParams) -> Self {
        self.delay = delay;
        self
    }

    /// Validates the description and assembles the fabric.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildArchitectureError`] if the geometry has no rows or no
    /// logic columns, a channel or column would carry no tracks, or the delay
    /// parameters are invalid.
    pub fn build(self) -> Result<Architecture, BuildArchitectureError> {
        if self.rows == 0 {
            return Err(BuildArchitectureError::NoRows);
        }
        if self.cols <= 2 * self.io_columns {
            return Err(BuildArchitectureError::NoLogicColumns {
                cols: self.cols,
                io_columns: self.io_columns,
            });
        }
        let tracks_per_channel = self
            .segmentation
            .forced_track_count()
            .unwrap_or(self.tracks_per_channel);
        if tracks_per_channel == 0 {
            return Err(BuildArchitectureError::NoTracks);
        }
        if self.vertical_scheme.tracks_per_column() == 0 {
            return Err(BuildArchitectureError::NoVerticalTracks);
        }
        if !self.delay.is_valid() {
            return Err(BuildArchitectureError::InvalidDelayParams);
        }

        let geometry = Geometry::new(self.rows, self.cols, self.io_columns);
        let num_channels = geometry.num_channels();

        let mut channels = Vec::with_capacity(num_channels);
        let mut hsegs = Vec::new();
        let mut hseg_locs = Vec::new();
        let mut next_id = 0usize;
        for c in 0..num_channels {
            let (tracks, next) = build_channel_tracks(
                &self.segmentation,
                c,
                tracks_per_channel,
                self.cols,
                next_id,
            );
            next_id = next;
            for (t, track) in tracks.iter().enumerate() {
                for (pos, seg) in track.segments().iter().enumerate() {
                    debug_assert_eq!(seg.id().index(), hsegs.len());
                    hsegs.push(*seg);
                    hseg_locs.push(HSegLocation {
                        channel: ChannelId::new(c),
                        track: TrackId::new(t),
                        pos: pos as u32,
                    });
                }
            }
            channels.push(tracks);
        }

        let verticals = self.vertical_scheme.build(self.cols, num_channels);
        let mut vsegs: Vec<VSegment> = verticals.iter().flatten().copied().collect();
        vsegs.sort_by_key(|s| s.id());

        Ok(Architecture {
            geometry,
            delay: self.delay,
            segmentation: self.segmentation,
            vertical_scheme: self.vertical_scheme,
            tracks_per_channel,
            channels,
            hsegs,
            hseg_locs,
            verticals,
            vsegs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Architecture {
        Architecture::builder()
            .rows(4)
            .cols(12)
            .io_columns(2)
            .tracks_per_channel(6)
            .segmentation(SegmentationScheme::Uniform { len: 4 })
            .verticals(VerticalScheme::Uniform {
                tracks_per_column: 2,
                span: 3,
            })
            .build()
            .expect("valid architecture")
    }

    #[test]
    fn builds_and_counts_resources() {
        let a = small();
        let stats = a.stats();
        assert_eq!(stats.num_sites, 48);
        assert_eq!(stats.num_channels, 5);
        assert_eq!(stats.tracks_per_channel, 6);
        assert_eq!(stats.num_hsegs, a.num_hsegs());
        assert_eq!(stats.num_vsegs, a.num_vsegs());
        assert!(stats.mean_hseg_len > 0.0);
    }

    #[test]
    fn hseg_lookup_round_trips() {
        let a = small();
        for chan in 0..a.geometry().num_channels() {
            let cid = ChannelId::new(chan);
            for (t, track) in a.channel_tracks(cid).iter().enumerate() {
                for (pos, seg) in track.segments().iter().enumerate() {
                    assert_eq!(a.hseg(seg.id()), seg);
                    assert_eq!(a.hseg_channel(seg.id()), cid);
                    assert_eq!(a.hseg_track(seg.id()).index(), t);
                    assert_eq!(a.hseg_pos(seg.id()), pos);
                }
            }
        }
    }

    #[test]
    fn vseg_lookup_round_trips() {
        let a = small();
        for col in 0..a.geometry().num_cols() {
            for seg in a.vsegs_at(ColId::new(col)) {
                assert_eq!(a.vseg(seg.id()), seg);
                assert_eq!(seg.col().index(), col);
            }
        }
        assert_eq!(a.vsegs().count(), a.num_vsegs());
    }

    #[test]
    fn with_tracks_changes_only_channel_capacity() {
        let a = small();
        let b = a.with_tracks(3).expect("rebuild");
        assert_eq!(b.tracks_per_channel(), 3);
        assert_eq!(b.geometry(), a.geometry());
        assert_eq!(b.num_vsegs(), a.num_vsegs());
        assert_eq!(b.num_hsegs(), a.num_hsegs() / 2);
        assert!(a.with_tracks(0).is_err());
    }

    #[test]
    fn rejects_degenerate_geometry() {
        assert_eq!(
            Architecture::builder().rows(0).build().unwrap_err(),
            BuildArchitectureError::NoRows
        );
        assert!(matches!(
            Architecture::builder()
                .cols(4)
                .io_columns(2)
                .build()
                .unwrap_err(),
            BuildArchitectureError::NoLogicColumns { .. }
        ));
        assert_eq!(
            Architecture::builder()
                .tracks_per_channel(0)
                .build()
                .unwrap_err(),
            BuildArchitectureError::NoTracks
        );
    }

    #[test]
    fn rejects_invalid_delay_params() {
        let p = DelayParams {
            t_comb: f64::INFINITY,
            ..DelayParams::default()
        };
        assert_eq!(
            Architecture::builder().delay(p).build().unwrap_err(),
            BuildArchitectureError::InvalidDelayParams
        );
    }

    #[test]
    fn explicit_segmentation_forces_track_count() {
        let a = Architecture::builder()
            .rows(1)
            .cols(8)
            .io_columns(1)
            .tracks_per_channel(99)
            .segmentation(SegmentationScheme::Explicit {
                tracks: vec![vec![4], vec![2, 6]],
            })
            .build()
            .expect("explicit arch");
        assert_eq!(a.tracks_per_channel(), 2);
        assert_eq!(a.channel_tracks(ChannelId::new(0)).len(), 2);
    }
}
