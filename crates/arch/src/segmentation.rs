//! Channel track segmentation.
//!
//! Each track in a channel is divided into contiguous horizontal segments.
//! Small segments waste little wire on short connections but force long
//! connections through many horizontal antifuses; long segments do the
//! opposite. Real row-based parts therefore mix segment lengths and stagger
//! the break positions from track to track — the *segmentation* of the
//! channel (paper §1).

use crate::ids::{ColId, HSegId};

/// A horizontal routing segment: a contiguous span of columns on one track.
///
/// The span is half-open over column indices: the segment crosses columns
/// `start..end` and can be tapped (via a cross antifuse) at any of them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct HSegment {
    id: HSegId,
    start: u32,
    end: u32,
}

impl HSegment {
    pub(crate) fn new(id: HSegId, start: usize, end: usize) -> Self {
        assert!(start < end, "segment must be non-empty");
        Self {
            id,
            start: start as u32,
            end: end as u32,
        }
    }

    /// Global identifier of this segment.
    pub fn id(&self) -> HSegId {
        self.id
    }

    /// First column covered.
    pub fn start(&self) -> usize {
        self.start as usize
    }

    /// One past the last column covered.
    pub fn end(&self) -> usize {
        self.end as usize
    }

    /// Number of columns covered.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Always false; segments are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the segment can be tapped at column `col`.
    pub fn covers(&self, col: ColId) -> bool {
        let c = col.index() as u32;
        self.start <= c && c < self.end
    }
}

/// One full-width wiring lane of a channel, subdivided into segments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Track {
    segments: Vec<HSegment>,
    /// `col_to_seg[col]` is the index of the segment covering `col` — the
    /// router probes this on every track of a channel for every span it
    /// considers, so the lookup must not search.
    col_to_seg: Vec<u32>,
}

impl Track {
    pub(crate) fn new(segments: Vec<HSegment>) -> Self {
        debug_assert!(!segments.is_empty());
        debug_assert!(segments.windows(2).all(|w| w[0].end() == w[1].start()));
        let width = segments.last().map_or(0, |s| s.end());
        let mut col_to_seg = vec![0u32; width];
        for (i, s) in segments.iter().enumerate() {
            col_to_seg[s.start()..s.end()].fill(i as u32);
        }
        Self {
            segments,
            col_to_seg,
        }
    }

    /// The segments of this track in left-to-right order.
    pub fn segments(&self) -> &[HSegment] {
        &self.segments
    }

    /// Number of segments on the track.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Index (within this track) of the segment covering `col`.
    ///
    /// Returns `None` only if `col` lies beyond the channel width.
    pub fn segment_at(&self, col: ColId) -> Option<usize> {
        self.col_to_seg.get(col.index()).map(|&i| i as usize)
    }
}

/// How to cut each track of each channel into segments.
#[derive(Clone, Debug, PartialEq)]
pub enum SegmentationScheme {
    /// Every track is one full-width segment (no horizontal antifuses ever
    /// needed; wasteful for wirability). Useful as a degenerate reference.
    FullLength,
    /// Every segment has length `len` (the last may be shorter), with break
    /// positions staggered by track index so that breaks do not align
    /// vertically.
    Uniform {
        /// Segment length in columns.
        len: usize,
    },
    /// A repeating mix of segment lengths, cycled per track with staggered
    /// phase. For example `lengths = [2, 4, 8]` produces tracks whose
    /// segments repeat 2-4-8-2-4-8…
    Mixed {
        /// The repeating pattern of segment lengths.
        lengths: Vec<usize>,
    },
    /// An Actel-flavoured pseudo-random mix: mostly short segments
    /// (lengths 2–4), some medium (6–8) and one long-line track per four
    /// tracks, generated deterministically from `seed`.
    ActelLike {
        /// Seed for the deterministic segment-length draw.
        seed: u64,
    },
    /// Fully explicit segmentation: `tracks[t]` lists the interior break
    /// columns of track `t` (each break `b` splits columns `..b` from
    /// `b..`). The same pattern is applied to every channel. The number of
    /// tracks given here overrides the builder's `tracks_per_channel`.
    Explicit {
        /// Interior break columns per track.
        tracks: Vec<Vec<usize>>,
    },
}

impl SegmentationScheme {
    /// Generates the interior break columns for track `track` of a channel
    /// `width` columns wide in channel `channel`.
    pub(crate) fn breaks(&self, channel: usize, track: usize, width: usize) -> Vec<usize> {
        match self {
            SegmentationScheme::FullLength => Vec::new(),
            SegmentationScheme::Uniform { len } => {
                let len = (*len).max(1);
                let phase = track % len;
                let mut breaks = Vec::new();
                let mut b = if phase == 0 { len } else { phase };
                while b < width {
                    breaks.push(b);
                    b += len;
                }
                breaks
            }
            SegmentationScheme::Mixed { lengths } => {
                assert!(!lengths.is_empty(), "Mixed segmentation needs lengths");
                let mut breaks = Vec::new();
                let mut pos = 0usize;
                let mut i = track; // stagger the phase per track
                while pos < width {
                    pos += lengths[i % lengths.len()].max(1);
                    i += 1;
                    if pos < width {
                        breaks.push(pos);
                    }
                }
                breaks
            }
            SegmentationScheme::ActelLike { seed } => {
                if track % 4 == 3 {
                    // one long-line track per group of four
                    return Vec::new();
                }
                let mut state = seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add((channel as u64) << 32)
                    .wrapping_add(track as u64 + 1);
                let mut next = move || {
                    // xorshift64* — deterministic, dependency-free
                    state ^= state >> 12;
                    state ^= state << 25;
                    state ^= state >> 27;
                    state = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
                    state
                };
                let mut breaks = Vec::new();
                let mut pos = 0usize;
                loop {
                    let r = next() % 100;
                    let len = if r < 60 {
                        2 + (next() % 3) as usize // 2..=4
                    } else if r < 90 {
                        6 + (next() % 3) as usize // 6..=8
                    } else {
                        12 + (next() % 5) as usize // 12..=16
                    };
                    pos += len;
                    if pos >= width {
                        break;
                    }
                    breaks.push(pos);
                }
                breaks
            }
            SegmentationScheme::Explicit { tracks } => {
                let mut b = tracks[track].clone();
                b.sort_unstable();
                b.dedup();
                b.retain(|&x| x > 0 && x < width);
                b
            }
        }
    }

    /// Number of tracks this scheme mandates, if it overrides the builder's
    /// `tracks_per_channel` (only [`SegmentationScheme::Explicit`] does).
    pub(crate) fn forced_track_count(&self) -> Option<usize> {
        match self {
            SegmentationScheme::Explicit { tracks } => Some(tracks.len()),
            _ => None,
        }
    }

    /// Mean segment length, in columns, that this scheme produces on a
    /// channel of the given `width` — used by the timing estimator for nets
    /// that are not yet physically embedded.
    pub fn mean_segment_len(&self, width: usize) -> f64 {
        match self {
            SegmentationScheme::FullLength => width as f64,
            SegmentationScheme::Uniform { len } => (*len).min(width).max(1) as f64,
            SegmentationScheme::Mixed { lengths } => {
                let sum: usize = lengths.iter().sum();
                (sum as f64 / lengths.len() as f64).min(width as f64)
            }
            SegmentationScheme::ActelLike { .. } => {
                // expectation of the draw above: 0.6·3 + 0.3·7 + 0.1·14
                (0.6 * 3.0 + 0.3 * 7.0 + 0.1 * 14.0f64).min(width as f64)
            }
            SegmentationScheme::Explicit { tracks } => {
                let total_segments: usize = tracks.iter().map(|t| t.len() + 1).sum();
                if total_segments == 0 {
                    width as f64
                } else {
                    (tracks.len() * width) as f64 / total_segments as f64
                }
            }
        }
    }
}

/// Builds the tracks for one channel, assigning global segment ids starting
/// at `next_id`. Returns the tracks and the next free id.
pub(crate) fn build_channel_tracks(
    scheme: &SegmentationScheme,
    channel: usize,
    num_tracks: usize,
    width: usize,
    mut next_id: usize,
) -> (Vec<Track>, usize) {
    let mut tracks = Vec::with_capacity(num_tracks);
    for t in 0..num_tracks {
        let breaks = scheme.breaks(channel, t, width);
        let mut segments = Vec::with_capacity(breaks.len() + 1);
        let mut start = 0usize;
        for &b in &breaks {
            segments.push(HSegment::new(HSegId::new(next_id), start, b));
            next_id += 1;
            start = b;
        }
        segments.push(HSegment::new(HSegId::new(next_id), start, width));
        next_id += 1;
        tracks.push(Track::new(segments));
    }
    (tracks, next_id)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans(scheme: &SegmentationScheme, track: usize, width: usize) -> Vec<(usize, usize)> {
        let (tracks, _) = build_channel_tracks(scheme, 0, track + 1, width, 0);
        tracks[track]
            .segments()
            .iter()
            .map(|s| (s.start(), s.end()))
            .collect()
    }

    #[test]
    fn full_length_is_one_segment() {
        assert_eq!(spans(&SegmentationScheme::FullLength, 0, 16), vec![(0, 16)]);
    }

    #[test]
    fn uniform_segments_are_staggered_per_track() {
        let s = SegmentationScheme::Uniform { len: 4 };
        assert_eq!(spans(&s, 0, 10), vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(spans(&s, 1, 10), vec![(0, 1), (1, 5), (5, 9), (9, 10)]);
        assert_eq!(spans(&s, 2, 10), vec![(0, 2), (2, 6), (6, 10)]);
    }

    #[test]
    fn mixed_pattern_cycles() {
        let s = SegmentationScheme::Mixed {
            lengths: vec![2, 4],
        };
        assert_eq!(spans(&s, 0, 12), vec![(0, 2), (2, 6), (6, 8), (8, 12)]);
        // phase shifted by one on track 1: starts with the 4-length
        assert_eq!(spans(&s, 1, 12), vec![(0, 4), (4, 6), (6, 10), (10, 12)]);
    }

    #[test]
    fn explicit_breaks_are_sanitized() {
        let s = SegmentationScheme::Explicit {
            tracks: vec![vec![8, 3, 3, 0, 99]],
        };
        assert_eq!(spans(&s, 0, 10), vec![(0, 3), (3, 8), (8, 10)]);
    }

    #[test]
    fn actel_like_is_deterministic_and_tiles_the_width() {
        let s = SegmentationScheme::ActelLike { seed: 9 };
        let a = spans(&s, 0, 40);
        let b = spans(&s, 0, 40);
        assert_eq!(a, b);
        assert_eq!(a.first().map(|x| x.0), Some(0));
        assert_eq!(a.last().map(|x| x.1), Some(40));
        for w in a.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
        // every fourth track is a long line
        assert_eq!(spans(&s, 3, 40), vec![(0, 40)]);
    }

    #[test]
    fn track_segment_lookup() {
        let s = SegmentationScheme::Uniform { len: 4 };
        let (tracks, next) = build_channel_tracks(&s, 0, 2, 10, 5);
        assert_eq!(next, 5 + 3 + 4);
        let t0 = &tracks[0];
        assert_eq!(t0.segment_at(ColId::new(0)), Some(0));
        assert_eq!(t0.segment_at(ColId::new(3)), Some(0));
        assert_eq!(t0.segment_at(ColId::new(4)), Some(1));
        assert_eq!(t0.segment_at(ColId::new(9)), Some(2));
        assert_eq!(t0.segment_at(ColId::new(10)), None);
        assert!(t0.segments()[1].covers(ColId::new(5)));
        assert!(!t0.segments()[1].covers(ColId::new(8)));
    }

    #[test]
    fn global_ids_are_consecutive_across_tracks() {
        let s = SegmentationScheme::Uniform { len: 5 };
        let (tracks, next) = build_channel_tracks(&s, 2, 3, 10, 100);
        let mut expected = 100;
        for t in &tracks {
            for seg in t.segments() {
                assert_eq!(seg.id().index(), expected);
                expected += 1;
            }
        }
        assert_eq!(next, expected);
    }

    #[test]
    fn mean_segment_len_matches_generated_tracks_for_uniform() {
        let s = SegmentationScheme::Uniform { len: 4 };
        assert!((s.mean_segment_len(100) - 4.0).abs() < 1e-9);
        assert!((SegmentationScheme::FullLength.mean_segment_len(32) - 32.0).abs() < 1e-9);
    }
}
