//! Chip geometry: rows, columns and module sites.

use crate::ids::{ChannelId, ColId, RowId, SiteId};

/// What kind of cell a site can legally hold.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SiteKind {
    /// A logic-module slot in the interior of a row; holds combinational or
    /// sequential cells.
    Logic,
    /// An I/O-module slot at the ends of a row; holds primary input or
    /// output cells.
    Io,
}

/// One module slot at a fixed (row, column) position.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Site {
    id: SiteId,
    row: RowId,
    col: ColId,
    kind: SiteKind,
}

impl Site {
    /// The site's identifier.
    pub fn id(&self) -> SiteId {
        self.id
    }

    /// The row the site belongs to.
    pub fn row(&self) -> RowId {
        self.row
    }

    /// The column the site occupies.
    pub fn col(&self) -> ColId {
        self.col
    }

    /// The kind of cell this site accepts.
    pub fn kind(&self) -> SiteKind {
        self.kind
    }

    /// The channel directly below this site's row.
    pub fn channel_below(&self) -> ChannelId {
        ChannelId::new(self.row.index())
    }

    /// The channel directly above this site's row.
    pub fn channel_above(&self) -> ChannelId {
        ChannelId::new(self.row.index() + 1)
    }
}

/// The floorplan of the chip: a grid of sites with I/O slots at the ends of
/// every row.
///
/// Row `r` is bounded by channel `r` below and channel `r + 1` above, so a
/// chip with `rows` rows exposes `rows + 1` channels. The leftmost and
/// rightmost `io_columns` columns of every row are [`SiteKind::Io`] sites;
/// the interior columns are [`SiteKind::Logic`] sites.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Geometry {
    rows: usize,
    cols: usize,
    io_columns: usize,
    sites: Vec<Site>,
}

impl Geometry {
    pub(crate) fn new(rows: usize, cols: usize, io_columns: usize) -> Self {
        let mut sites = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let kind = if c < io_columns || c >= cols - io_columns {
                    SiteKind::Io
                } else {
                    SiteKind::Logic
                };
                sites.push(Site {
                    id: SiteId::new(r * cols + c),
                    row: RowId::new(r),
                    col: ColId::new(c),
                    kind,
                });
            }
        }
        Self {
            rows,
            cols,
            io_columns,
            sites,
        }
    }

    /// Number of logic rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Number of horizontal channels (`num_rows + 1`).
    pub fn num_channels(&self) -> usize {
        self.rows + 1
    }

    /// Number of I/O columns reserved at *each* end of every row.
    pub fn io_columns(&self) -> usize {
        self.io_columns
    }

    /// Total number of sites.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// Number of logic sites.
    pub fn num_logic_sites(&self) -> usize {
        self.rows * (self.cols - 2 * self.io_columns)
    }

    /// Number of I/O sites.
    pub fn num_io_sites(&self) -> usize {
        self.rows * 2 * self.io_columns
    }

    /// Looks up a site by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this geometry.
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id.index()]
    }

    /// The site at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn site_at(&self, row: RowId, col: ColId) -> &Site {
        assert!(row.index() < self.rows, "row out of range");
        assert!(col.index() < self.cols, "col out of range");
        &self.sites[row.index() * self.cols + col.index()]
    }

    /// Iterates over all sites in row-major order.
    pub fn sites(&self) -> impl Iterator<Item = &Site> + '_ {
        self.sites.iter()
    }

    /// Iterates over sites of a particular kind.
    pub fn sites_of_kind(&self, kind: SiteKind) -> impl Iterator<Item = &Site> + '_ {
        self.sites.iter().filter(move |s| s.kind == kind)
    }

    /// The channel below row `row`.
    pub fn channel_below(&self, row: RowId) -> ChannelId {
        ChannelId::new(row.index())
    }

    /// The channel above row `row`.
    pub fn channel_above(&self, row: RowId) -> ChannelId {
        ChannelId::new(row.index() + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry::new(4, 10, 2)
    }

    #[test]
    fn site_counts_partition_the_grid() {
        let g = geom();
        assert_eq!(g.num_sites(), 40);
        assert_eq!(g.num_logic_sites(), 24);
        assert_eq!(g.num_io_sites(), 16);
        assert_eq!(g.num_logic_sites() + g.num_io_sites(), g.num_sites());
    }

    #[test]
    fn io_sites_sit_at_row_ends() {
        let g = geom();
        for r in 0..4 {
            let row = RowId::new(r);
            assert_eq!(g.site_at(row, ColId::new(0)).kind(), SiteKind::Io);
            assert_eq!(g.site_at(row, ColId::new(1)).kind(), SiteKind::Io);
            assert_eq!(g.site_at(row, ColId::new(2)).kind(), SiteKind::Logic);
            assert_eq!(g.site_at(row, ColId::new(7)).kind(), SiteKind::Logic);
            assert_eq!(g.site_at(row, ColId::new(8)).kind(), SiteKind::Io);
            assert_eq!(g.site_at(row, ColId::new(9)).kind(), SiteKind::Io);
        }
    }

    #[test]
    fn site_lookup_is_consistent_with_iteration() {
        let g = geom();
        for site in g.sites() {
            assert_eq!(g.site(site.id()), site);
            assert_eq!(g.site_at(site.row(), site.col()), site);
        }
    }

    #[test]
    fn rows_are_bracketed_by_channels() {
        let g = geom();
        assert_eq!(g.num_channels(), 5);
        let s = g.site_at(RowId::new(2), ColId::new(3));
        assert_eq!(s.channel_below(), ChannelId::new(2));
        assert_eq!(s.channel_above(), ChannelId::new(3));
        assert_eq!(g.channel_below(RowId::new(0)), ChannelId::new(0));
        assert_eq!(g.channel_above(RowId::new(3)), ChannelId::new(4));
    }

    #[test]
    fn sites_of_kind_filters() {
        let g = geom();
        assert_eq!(g.sites_of_kind(SiteKind::Logic).count(), 24);
        assert_eq!(g.sites_of_kind(SiteKind::Io).count(), 16);
    }
}
