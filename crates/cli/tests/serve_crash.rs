//! Crash-recovery differential for the `rowfpga serve` binary.
//!
//! The hardest robustness contract of the service: a SIGKILL at an
//! arbitrary instant mid-anneal loses no accepted job, and the restarted
//! daemon resumes the interrupted job from its last checkpoint to a
//! final layout that is bit-for-bit identical to an uninterrupted run.
//! This drives the real binary (not the in-process daemon) so the spool,
//! socket, signal and process-exit paths are all the production ones.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use rowfpga_core::{size_architecture, SimPrConfig, SimultaneousPlaceRoute, SizingConfig};
use rowfpga_netlist::{generate, parse_netlist, write_netlist, GenerateConfig};
use rowfpga_obs::Json;
use rowfpga_serve::{client, layout_digest, JobSpec, Spool};

const WAIT: Duration = Duration::from_secs(240);

fn netlist_text(cells: usize) -> String {
    write_netlist(&generate(&GenerateConfig {
        num_cells: cells,
        num_inputs: 8,
        num_outputs: 6,
        num_seq: 4,
        ..GenerateConfig::default()
    }))
}

/// The uninterrupted result for this netlist under the daemon's engine
/// configuration (checkpointing on, armed stop flag — both change the
/// engine's best-so-far tracking, so a bare run would not be comparable).
fn reference_digest(scratch: &Path, netlist: &str, seed: u64) -> String {
    let nl = parse_netlist(netlist).unwrap();
    let arch = size_architecture(&nl, &SizingConfig::default()).unwrap();
    std::fs::create_dir_all(scratch).unwrap();
    let mut cfg = SimPrConfig::fast().with_seed(seed);
    cfg.resilience.checkpoint_path = Some(scratch.join("checkpoint.json"));
    cfg.resilience.checkpoint_every = 1;
    let result = SimultaneousPlaceRoute::new(cfg)
        .run_with_stop(
            &arch,
            &nl,
            "reference",
            &rowfpga_obs::Obs::disabled(),
            &rowfpga_core::StopFlag::manual(),
        )
        .unwrap();
    layout_digest(&nl, &result)
}

fn spawn_daemon(socket: &Path, spool: &Path) -> Child {
    Command::new(env!("CARGO_BIN_EXE_rowfpga"))
        .args([
            "serve",
            "--socket",
            socket.to_str().unwrap(),
            "--spool",
            spool.to_str().unwrap(),
            "--checkpoint-every",
            "1",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn rowfpga serve")
}

fn wait_until_serving(socket: &Path) {
    for _ in 0..1200 {
        if client::request(socket, &Json::obj(vec![("cmd", "ping".into())])).is_ok() {
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("daemon never came up on {}", socket.display());
}

fn spec(netlist: &str) -> JobSpec {
    JobSpec {
        netlist: netlist.to_string(),
        fast: true,
        ..JobSpec::default()
    }
}

fn digest_of(status: &Json) -> String {
    status
        .get("result")
        .and_then(|r| r.get("digest"))
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string()
}

#[test]
fn sigkill_mid_job_loses_nothing_and_the_resume_is_bit_identical() {
    let root: PathBuf =
        std::env::temp_dir().join(format!("rowfpga-serve-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let socket = root.join("sock");
    let spool_dir = root.join("spool");

    let long = netlist_text(140);
    let quick = netlist_text(24);
    let ref_long = reference_digest(&root.join("ref-long"), &long, 1);
    let ref_quick = reference_digest(&root.join("ref-quick"), &quick, 1);

    let mut daemon = spawn_daemon(&socket, &spool_dir);
    wait_until_serving(&socket);
    // Job A anneals on the single worker; job B waits in the queue, so
    // the kill takes down one running and one queued job at once.
    let a = client::submit(&socket, &spec(&long)).unwrap();
    let b = client::submit(&socket, &spec(&quick)).unwrap();

    // Let A reach its first durable checkpoint, then SIGKILL the daemon —
    // no drain, no cleanup, exactly what a crash or OOM kill looks like.
    let spool = Spool::open(&spool_dir).unwrap();
    for _ in 0..24_000 {
        if spool.has_checkpoint(&a) {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(spool.has_checkpoint(&a), "job never wrote a checkpoint");
    daemon.kill().unwrap();
    daemon.wait().unwrap();

    // A restart on the same socket and spool recovers both jobs without
    // any operator intervention and runs them to completion.
    let mut daemon = spawn_daemon(&socket, &spool_dir);
    wait_until_serving(&socket);
    let done_a = client::wait(&socket, &a, WAIT).unwrap();
    let done_b = client::wait(&socket, &b, WAIT).unwrap();
    assert_eq!(client::state_of(&done_a), Some("done"));
    assert_eq!(client::state_of(&done_b), Some("done"));

    // The interrupted job really resumed (second execution segment)
    // rather than silently starting over...
    let segments = done_a
        .get("job")
        .and_then(|j| j.get("segments"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert!(segments >= 2, "expected a resumed segment, got {segments}");
    // ...and the determinism contract held across the crash.
    assert_eq!(digest_of(&done_a), ref_long, "resumed layout diverged");
    assert_eq!(digest_of(&done_b), ref_quick, "queued job diverged");

    let stats = client::request(&socket, &Json::obj(vec![("cmd", "stats".into())])).unwrap();
    assert_eq!(
        stats
            .get("stats")
            .and_then(|s| s.get("recovered"))
            .and_then(Json::as_u64),
        Some(2),
        "both interrupted jobs must be recovered: {stats:?}"
    );

    // SIGTERM drains gracefully: the daemon exits 0 and removes its
    // socket.
    Command::new("kill")
        .args(["-TERM", &daemon.id().to_string()])
        .status()
        .unwrap();
    let status = daemon.wait().unwrap();
    assert!(status.success(), "drain must exit 0, got {status:?}");
    assert!(!socket.exists(), "drain must remove the socket file");
    let _ = std::fs::remove_dir_all(&root);
}
