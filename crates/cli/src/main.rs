//! The `rowfpga` command-line tool.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match rowfpga_cli::parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    match rowfpga_cli::run_command(&command, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
