//! The `rowfpga` command-line tool.

use std::process::ExitCode;

/// SIGINT (ctrl-c) and SIGTERM handling: the handler only sets a static
/// atomic, which the layout engine polls between temperature steps — the
/// run finishes the current temperature, writes a final checkpoint and
/// returns its best-so-far layout tagged `stop: interrupted`. For
/// `rowfpga serve` the same flag starts the graceful drain: running jobs
/// checkpoint, the queue persists, and the daemon exits 0. A second
/// signal during the wind-down kills the process the default way.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set (only) by the signal handler; watched by the engine's StopFlag.
    pub static STOP: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    const SIG_DFL: usize = 0;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(signum: i32) {
        STOP.store(true, Ordering::SeqCst);
        // Restore the default disposition so a second signal terminates.
        // SAFETY: resetting a signal to SIG_DFL from within its handler is async-signal-safe.
        unsafe {
            signal(signum, SIG_DFL);
        }
    }

    pub fn install() {
        // SAFETY: on_signal only stores an AtomicBool and re-arms SIG_DFL, both async-signal-safe.
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match rowfpga_cli::parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    #[cfg(unix)]
    let stop = {
        signals::install();
        rowfpga_cli::StopFlag::watching(&signals::STOP)
    };
    #[cfg(not(unix))]
    let stop = rowfpga_cli::StopFlag::none();
    let mut stdout = std::io::stdout().lock();
    match rowfpga_cli::run_command_with_stop(&command, &mut stdout, &stop) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
