//! Implementation of the `rowfpga` command-line tool.
//!
//! Subcommands:
//!
//! * `generate` — emit a synthetic technology-mapped netlist (native
//!   format) with configurable size and structure;
//! * `layout` — place and route a netlist (native or BLIF) with either
//!   flow, printing a layout report and optionally writing an SVG plot;
//! * `mintracks` — find the minimum tracks/channel each flow needs for
//!   100 % wirability of a design (the paper's Table 2 methodology);
//! * `bench` — run one of the paper's preset benchmarks by name;
//! * `serve` / `submit` / `jobs` / `cancel` — the layout-as-a-service
//!   daemon and its clients (see `rowfpga_serve` and DESIGN.md §13).
//!
//! The argument parser is deliberately dependency-free; see [`parse_args`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;
mod service;
mod tail;

pub use args::{parse_args, ArgError, Command, CommonOpts, FlowChoice, ThreadsChoice};
pub use commands::{run_command, run_command_with_stop, CliError};
pub use rowfpga_core::StopFlag;
