//! `rowfpga tail`: live rendering of a run journal.
//!
//! Two sources are supported:
//!
//! * a journal **file** being written by `--journal FILE` — read what is
//!   there, then poll for appended lines until the run ends (or
//!   immediately stop with `--no-follow`);
//! * a Unix **socket** (`unix:PATH`) — bind, wait for the run started
//!   with `--journal unix:PATH` to connect, and render each event as it
//!   arrives.
//!
//! The renderer itself ([`rowfpga_obs::LiveStatus`]) is clock-free; this
//! module supplies the only wall-clock input (seconds per temperature,
//! for the ETA) and the poll pacing.

use std::io::{BufRead, BufReader, Write};
use std::time::Duration;
// rowfpga-lint: begin-allow(determinism) reason=tail measures wall-clock pacing for the ETA display only; nothing feeds back into any solver
use std::time::Instant;

use rowfpga_obs::{LiveStatus, SOCKET_SPEC_PREFIX};

use crate::commands::CliError;

/// How often a following tail re-checks a quiet file.
const POLL: Duration = Duration::from_millis(200);

/// Measures seconds-per-temperature from the caller's clock as
/// temperature records stream past.
struct TempClock {
    started: Instant,
    last_temps: usize,
    last_at: f64,
    per_temp: Option<f64>,
}

impl TempClock {
    fn new() -> TempClock {
        TempClock {
            started: Instant::now(),
            last_temps: 0,
            last_at: 0.0,
            per_temp: None,
        }
    }

    /// Updates the pace estimate; call after every ingested line.
    fn observe(&mut self, temps_seen: usize) {
        if temps_seen > self.last_temps {
            let now = self.started.elapsed().as_secs_f64();
            let dt = (now - self.last_at) / (temps_seen - self.last_temps) as f64;
            // EMA so one slow temperature does not swing the ETA.
            self.per_temp = Some(match self.per_temp {
                Some(prev) => 0.7 * prev + 0.3 * dt,
                None => dt,
            });
            self.last_temps = temps_seen;
            self.last_at = now;
        }
    }
}
// rowfpga-lint: end-allow(determinism)

/// Entry point for `rowfpga tail`.
///
/// # Errors
///
/// Returns [`CliError`] on I/O failures or a journal with an unsupported
/// (newer) schema.
pub fn run_tail(
    source: &str,
    listen: bool,
    follow: bool,
    out: &mut impl Write,
) -> Result<(), CliError> {
    let _ = listen; // `unix:` sources always listen; the flag is explicit intent
    if let Some(path) = source.strip_prefix(SOCKET_SPEC_PREFIX) {
        tail_socket(path, out)
    } else {
        tail_file(source, follow, out)
    }
}

/// Renders one ingested line's effect; prints a fresh status line only
/// when it changed, so file tails don't repeat themselves.
fn render_step(
    status: &LiveStatus,
    clock: &mut TempClock,
    last_line: &mut String,
    out: &mut impl Write,
) -> Result<(), CliError> {
    clock.observe(status.temps_seen);
    for w in &status.warnings[status.warnings.len().saturating_sub(1)..] {
        if !last_line.starts_with("warned") {
            writeln!(out, "warning: {w}")?;
            *last_line = format!("warned {w}");
        }
    }
    let line = status.status_line(clock.per_temp);
    if line != *last_line {
        writeln!(out, "{line}")?;
        out.flush()?;
        *last_line = line;
    }
    Ok(())
}

fn ingest(status: &mut LiveStatus, line: &str) -> Result<(), CliError> {
    status
        .ingest_line(line)
        .map_err(|e| CliError::Parse(e.to_string()))
}

fn tail_file(path: &str, follow: bool, out: &mut impl Write) -> Result<(), CliError> {
    let file = std::fs::File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut status = LiveStatus::new();
    let mut clock = TempClock::new();
    let mut last_line = String::new();
    let mut buf = String::new();
    loop {
        buf.clear();
        let n = reader.read_line(&mut buf)?;
        if n == 0 {
            if status.done() || !follow {
                break;
            }
            std::thread::sleep(POLL);
            continue;
        }
        if !buf.ends_with('\n') && follow && !status.done() {
            // A partial line is mid-write; wait for the rest. BufReader
            // consumed it, so stitch the remainder on next pass.
            let mut rest = String::new();
            while !buf.ends_with('\n') {
                std::thread::sleep(POLL);
                rest.clear();
                if reader.read_line(&mut rest)? == 0 && status.done() {
                    break;
                }
                buf.push_str(&rest);
            }
        }
        ingest(&mut status, &buf)?;
        render_step(&status, &mut clock, &mut last_line, out)?;
    }
    finish(&status, &mut last_line, out)
}

#[cfg(unix)]
fn tail_socket(path: &str, out: &mut impl Write) -> Result<(), CliError> {
    use std::os::unix::net::UnixListener;

    // A stale socket file from a previous tail blocks the bind.
    if std::fs::metadata(path).is_ok() {
        let _ = std::fs::remove_file(path);
    }
    let listener = UnixListener::bind(path)?;
    writeln!(
        out,
        "listening on unix:{path} — start a run with --journal unix:{path}"
    )?;
    out.flush()?;
    let (stream, _addr) = listener.accept()?;
    let mut reader = BufReader::new(stream);
    let mut status = LiveStatus::new();
    let mut clock = TempClock::new();
    let mut last_line = String::new();
    let mut buf = String::new();
    loop {
        buf.clear();
        // A zero read means the writer hung up (run ended or crashed).
        if reader.read_line(&mut buf)? == 0 {
            break;
        }
        ingest(&mut status, &buf)?;
        render_step(&status, &mut clock, &mut last_line, out)?;
    }
    let _ = std::fs::remove_file(path);
    finish(&status, &mut last_line, out)
}

#[cfg(not(unix))]
fn tail_socket(_path: &str, _out: &mut impl Write) -> Result<(), CliError> {
    Err(CliError::Parse(
        "unix: sources are only supported on Unix platforms".into(),
    ))
}

fn finish(
    status: &LiveStatus,
    last_line: &mut String,
    out: &mut impl Write,
) -> Result<(), CliError> {
    let line = status.status_line(None);
    if line != *last_line {
        writeln!(out, "{line}")?;
    }
    if !status.done() {
        writeln!(out, "journal ended without a stop record")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowfpga_obs::{Event, EventMeta, TemperatureRecord};

    fn temp_line(index: usize, seq: u64) -> String {
        Event::Temperature(TemperatureRecord {
            index,
            temperature: 10.0 / (index + 1) as f64,
            moves: 100,
            accepted: 100usize.saturating_sub(index * 20),
            mean_cost: 10.0,
            std_cost: 1.0,
            current_cost: 10.0 - index as f64,
            best_cost: 10.0 - index as f64,
        })
        .to_json_with(&EventMeta {
            seq,
            span: 0,
            parent_span: 0,
            replica: 0,
        })
        .to_string_compact()
    }

    fn journal_text() -> String {
        let mut lines = vec![
            format!(
                "{{\"event\":\"journal_header\",\"schema\":{},\"generator\":\"test\"}}",
                rowfpga_obs::SCHEMA_VERSION
            ),
            "{\"event\":\"run_start\",\"flow\":\"simultaneous\",\"benchmark\":\"s1\",\"seed\":1,\"config\":{}}".to_owned(),
        ];
        for i in 0..3 {
            lines.push(temp_line(i, i as u64 + 3));
        }
        lines.push(
            "{\"event\":\"stop\",\"reason\":\"converged\",\"temps\":3,\"repairs\":0}".to_owned(),
        );
        lines.join("\n") + "\n"
    }

    #[test]
    fn file_tail_renders_progress_and_completion() {
        let path = std::env::temp_dir().join("rowfpga_tail_file_test.jsonl");
        std::fs::write(&path, journal_text()).unwrap();
        let mut out = Vec::new();
        run_tail(path.to_str().unwrap(), false, false, &mut out).unwrap();
        let _ = std::fs::remove_file(&path);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("temp "), "{text}");
        assert!(text.contains("done (converged)"), "{text}");
    }

    #[test]
    fn newer_schema_is_rejected() {
        let path = std::env::temp_dir().join("rowfpga_tail_schema_test.jsonl");
        std::fs::write(
            &path,
            format!(
                "{{\"event\":\"journal_header\",\"schema\":{},\"generator\":\"future\"}}\n",
                rowfpga_obs::SCHEMA_VERSION + 1
            ),
        )
        .unwrap();
        let mut out = Vec::new();
        let err = run_tail(path.to_str().unwrap(), false, false, &mut out).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(format!("{err}").contains("newer"), "{err}");
    }

    #[cfg(unix)]
    #[test]
    fn socket_tail_streams_a_live_run() {
        let sock = std::env::temp_dir().join("rowfpga_tail_sock_test.sock");
        let sock_str = sock.to_str().unwrap().to_owned();
        let _ = std::fs::remove_file(&sock);
        let spec = format!("unix:{sock_str}");
        let writer = std::thread::spawn(move || {
            // Wait for the listener, then stream a short run through the
            // same client sink the engine uses.
            for _ in 0..100 {
                if std::fs::metadata(&sock_str).is_ok() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            let sink = rowfpga_obs::SocketSink::connect(&sock_str).expect("connect");
            let obs = rowfpga_obs::Obs::with_sink(Box::new(sink));
            obs.emit(Event::Temperature(TemperatureRecord {
                index: 0,
                temperature: 5.0,
                moves: 10,
                accepted: 5,
                mean_cost: 4.0,
                std_cost: 0.5,
                current_cost: 4.0,
                best_cost: 3.5,
            }));
            obs.emit(Event::Stop {
                reason: "converged".into(),
                temps: 1,
                repairs: 0,
            });
            obs.flush();
        });
        let mut out = Vec::new();
        run_tail(&spec, true, true, &mut out).unwrap();
        writer.join().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("listening on"), "{text}");
        assert!(text.contains("done (converged)"), "{text}");
    }
}
