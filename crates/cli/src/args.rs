//! Dependency-free argument parsing for the `rowfpga` tool.

use std::error::Error;
use std::fmt;

/// Which layout flow to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowChoice {
    /// The paper's simultaneous place and route.
    Simultaneous,
    /// The traditional sequential baseline.
    Sequential,
}

impl FlowChoice {
    fn parse(s: &str) -> Result<FlowChoice, ArgError> {
        match s {
            "sim" | "simultaneous" => Ok(FlowChoice::Simultaneous),
            "seq" | "sequential" => Ok(FlowChoice::Sequential),
            other => Err(ArgError::BadValue {
                flag: "--flow".into(),
                value: other.into(),
                expected: "sim|seq".into(),
            }),
        }
    }
}

/// How many parallel annealing replicas to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadsChoice {
    /// One replica per host core, capped at the host's parallelism.
    Auto,
    /// An explicit replica count (always honored; oversubscription is
    /// warned about, not rejected).
    Count(usize),
}

impl ThreadsChoice {
    /// The replica count to run with on a host with `host_cores` cores.
    pub fn resolve(self, host_cores: usize) -> usize {
        match self {
            ThreadsChoice::Auto => host_cores.max(1),
            ThreadsChoice::Count(n) => n.max(1),
        }
    }

    /// Whether this choice can produce more than one replica (`auto` may,
    /// depending on the host).
    pub fn may_be_parallel(self) -> bool {
        match self {
            ThreadsChoice::Auto => true,
            ThreadsChoice::Count(n) => n > 1,
        }
    }
}

/// Options shared by the layout-running subcommands.
#[derive(Clone, Debug, PartialEq)]
pub struct CommonOpts {
    /// Which flow to run.
    pub flow: FlowChoice,
    /// Smoke-effort annealing (quick, lower quality).
    pub fast: bool,
    /// Seed for placement and annealing.
    pub seed: u64,
    /// Override tracks per channel (None = sizing default).
    pub tracks: Option<usize>,
    /// Architecture description file (None = auto-size for the design).
    pub arch: Option<String>,
    /// Write an SVG layout plot here.
    pub svg: Option<String>,
    /// Print the ASCII floorplan.
    pub ascii: bool,
    /// Print the critical-path report.
    pub report: bool,
    /// Write a structured JSONL run journal here.
    pub journal: Option<String>,
    /// Print the metrics / phase-profile report after the run.
    pub metrics: bool,
    /// Write periodic checkpoints here.
    pub checkpoint: Option<String>,
    /// Checkpoint cadence in temperature steps.
    pub checkpoint_every: usize,
    /// Checkpoint generations to retain alongside the base file
    /// (0 = base file only, no generation history).
    pub checkpoint_keep: usize,
    /// Resume from this checkpoint file.
    pub resume: Option<String>,
    /// Wall-clock budget in seconds (graceful stop at the next
    /// temperature boundary).
    pub deadline: Option<f64>,
    /// Self-audit cadence in temperature steps (0 = off).
    pub audit_every: usize,
    /// Stop after this many temperature steps (deterministic deadline).
    pub temp_budget: Option<usize>,
    /// Parallel annealing replicas (1 = sequential engine, `auto` = one
    /// per host core).
    pub threads: ThreadsChoice,
}

impl CommonOpts {
    /// The first resilience flag present, if any — these are only
    /// meaningful for the simultaneous flow's single-run subcommands.
    fn resilience_flag(&self) -> Option<&'static str> {
        if self.checkpoint.is_some() {
            Some("--checkpoint")
        } else if self.resume.is_some() {
            Some("--resume")
        } else if self.deadline.is_some() {
            Some("--deadline")
        } else if self.audit_every != 0 {
            Some("--audit-every")
        } else if self.temp_budget.is_some() {
            Some("--temp-budget")
        } else {
            None
        }
    }
}

impl Default for CommonOpts {
    fn default() -> Self {
        Self {
            flow: FlowChoice::Simultaneous,
            fast: false,
            seed: 1,
            tracks: None,
            arch: None,
            svg: None,
            ascii: false,
            report: false,
            journal: None,
            metrics: false,
            checkpoint: None,
            checkpoint_every: 5,
            checkpoint_keep: 3,
            resume: None,
            deadline: None,
            audit_every: 0,
            temp_budget: None,
            threads: ThreadsChoice::Count(1),
        }
    }
}

/// A parsed invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Emit a synthetic netlist.
    Generate {
        /// Total cells.
        cells: usize,
        /// Primary inputs.
        inputs: usize,
        /// Primary outputs.
        outputs: usize,
        /// Sequential cells.
        seq: usize,
        /// Generator seed.
        seed: u64,
        /// Output file (`-` = stdout).
        output: String,
    },
    /// Lay out a netlist file.
    Layout {
        /// Input netlist path.
        input: String,
        /// Parse as BLIF instead of the native format.
        blif: bool,
        /// Shared layout options.
        opts: CommonOpts,
    },
    /// Find minimum tracks/channel for 100 % wirability.
    MinTracks {
        /// Input netlist path.
        input: String,
        /// Parse as BLIF instead of the native format.
        blif: bool,
        /// Scan start (tracks).
        start: usize,
        /// Shared layout options.
        opts: CommonOpts,
    },
    /// Run a paper preset benchmark by name.
    Bench {
        /// Benchmark name (s1, cse, ex1, bw, s1a, big529).
        name: String,
        /// Shared layout options.
        opts: CommonOpts,
    },
    /// Fuzz the incremental engine against the differential oracles.
    Fuzz {
        /// Wall-clock budget in seconds (checked between iterations).
        seconds: Option<u64>,
        /// Iteration budget.
        iters: Option<u64>,
        /// Base seed for case and script generation.
        seed: u64,
        /// Directory receiving shrunk `.net` + `.repro.json` pairs.
        corpus: Option<String>,
        /// Smallest generated netlist, in cells.
        min_cells: usize,
        /// Largest generated netlist, in cells.
        max_cells: usize,
        /// Replay one saved repro instead of fuzzing.
        replay: Option<String>,
    },
    /// Follow a run journal (file or Unix socket) and render live
    /// progress.
    Tail {
        /// A journal file path, or a `unix:PATH` socket spec.
        source: String,
        /// For `unix:` sources: bind and accept instead of connecting
        /// (pair with a run started with `--journal unix:PATH`).
        listen: bool,
        /// For file sources: keep polling for new lines after EOF.
        follow: bool,
    },
    /// Fold a run journal into a convergence-analytics report.
    Analyze {
        /// Journal path (JSONL, as written by `--journal`).
        journal: String,
        /// Directory receiving the JSON / text / folded-stack reports.
        out_dir: String,
        /// Suppress the text report on stdout.
        quiet: bool,
    },
    /// Run the layout-as-a-service job daemon.
    Serve {
        /// Unix socket to listen on.
        socket: String,
        /// Spool directory for durable job state.
        spool: String,
        /// Concurrent layout workers.
        workers: usize,
        /// Bounded queue capacity (full = reject with a retry hint).
        queue: usize,
        /// Checkpoint cadence for jobs, in temperature steps.
        checkpoint_every: usize,
        /// Checkpoint generations retained per job.
        checkpoint_keep: usize,
    },
    /// Submit a netlist to a running daemon.
    Submit {
        /// Input netlist path (native format).
        input: String,
        /// The daemon's unix socket.
        socket: String,
        /// Placement seed.
        seed: u64,
        /// Scheduling priority (higher runs first, may evict lower).
        priority: i64,
        /// Execution budget in seconds (expiry completes with
        /// best-so-far).
        deadline: Option<f64>,
        /// Low-effort annealing profile.
        fast: bool,
        /// Tracks-per-channel override.
        tracks: Option<usize>,
        /// Architecture description file (read and embedded in the job).
        arch: Option<String>,
        /// Per-job journal sink spec (file path or `unix:PATH`).
        journal: Option<String>,
        /// Block until the job finishes and print its result.
        wait: bool,
        /// Give up waiting after this many seconds.
        timeout: f64,
    },
    /// List a daemon's jobs, or show one job in detail.
    Jobs {
        /// The daemon's unix socket.
        socket: String,
        /// A job id to show in detail (absent = list all).
        job: Option<String>,
    },
    /// Cancel a queued or running job.
    CancelJob {
        /// The daemon's unix socket.
        socket: String,
        /// The job to cancel.
        job: String,
    },
    /// Run the domain lint engine over the workspace.
    Lint {
        /// Emit the machine-readable JSON report instead of text.
        json: bool,
        /// Rewrite `lint-budget.toml` with the observed (never higher)
        /// panic counts.
        fix_budget: bool,
        /// Print the rationale for one lint family and exit.
        explain: Option<String>,
        /// Workspace root to lint (default: current directory).
        root: Option<String>,
    },
    /// Print usage.
    Help,
}

/// Argument errors with actionable messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// Unknown subcommand.
    UnknownCommand(String),
    /// Unknown flag for the subcommand.
    UnknownFlag(String),
    /// A flag was given without its value.
    MissingValue(String),
    /// A flag value failed to parse.
    BadValue {
        /// The flag.
        flag: String,
        /// The offending value.
        value: String,
        /// What was expected.
        expected: String,
    },
    /// A required positional argument is missing.
    MissingInput,
    /// A required flag was not given.
    MissingFlag(String),
    /// Two flags contradict each other.
    Conflict {
        /// What contradicts what, and why.
        detail: String,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => {
                write!(f, "missing subcommand; try `rowfpga help`")
            }
            ArgError::UnknownCommand(c) => {
                write!(f, "unknown subcommand `{c}`; try `rowfpga help`")
            }
            ArgError::UnknownFlag(x) => write!(f, "unknown flag `{x}`"),
            ArgError::MissingValue(x) => write!(f, "flag `{x}` needs a value"),
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => write!(f, "bad value `{value}` for `{flag}` (expected {expected})"),
            ArgError::MissingInput => write!(f, "missing input netlist path"),
            ArgError::MissingFlag(x) => write!(f, "required flag `{x}` is missing"),
            ArgError::Conflict { detail } => write!(f, "conflicting flags: {detail}"),
        }
    }
}

impl Error for ArgError {}

/// Usage text printed by `rowfpga help`.
pub const USAGE: &str = "\
rowfpga — simultaneous place and route for row-based FPGAs (DAC 1994)

USAGE:
  rowfpga generate [--cells N] [--inputs N] [--outputs N] [--seq N]
                   [--seed N] [-o FILE]
  rowfpga layout   <netlist> [--blif] [--flow sim|seq] [--fast] [--seed N]
                   [--tracks N] [--arch FILE] [--svg FILE] [--ascii]
                   [--report] [--journal FILE] [--metrics]
                   [--checkpoint FILE] [--checkpoint-every N]
                   [--checkpoint-keep N] [--resume FILE] [--deadline SECS]
                   [--audit-every N] [--temp-budget N] [--threads N]
  rowfpga mintracks <netlist> [--blif] [--flow sim|seq] [--fast] [--seed N]
                   [--start N]
  rowfpga bench    <s1|cse|ex1|bw|s1a|big529> [--flow sim|seq] [--fast]
                   [--seed N] [--tracks N] [--svg FILE] [--ascii] [--report]
                   [--journal FILE] [--metrics] [--threads N]
  rowfpga fuzz     [--seconds N] [--iters N] [--seed N] [--corpus DIR]
                   [--min-cells N] [--max-cells N]
  rowfpga fuzz     --replay FILE.repro.json
  rowfpga serve    --socket PATH --spool DIR [--workers N] [--queue N]
                   [--checkpoint-every N] [--checkpoint-keep N]
  rowfpga submit   <netlist> --socket PATH [--seed N] [--priority N]
                   [--deadline SECS] [--fast] [--tracks N] [--arch FILE]
                   [--journal DEST] [--wait] [--timeout SECS]
  rowfpga jobs     --socket PATH [JOB]
  rowfpga cancel   --socket PATH JOB
  rowfpga tail     <journal.jsonl | unix:PATH> [--listen] [--no-follow]
  rowfpga analyze  <journal.jsonl> [--out DIR] [--quiet]
  rowfpga lint     [--json] [--fix-budget] [--explain LINT] [--root DIR]
  rowfpga help

PARALLELISM (simultaneous flow only):
  --threads N|auto anneal N independent replicas on N threads, exchanging
                   the best layout at temperature boundaries; deterministic
                   for a fixed (seed, N), and N=1 is bit-identical to the
                   sequential engine (incompatible with resilience flags).
                   `auto` caps the replica count at the host's cores; an
                   explicit N above that runs anyway with a journaled
                   `oversubscribed` warning

OBSERVABILITY:
  --journal DEST   write a structured JSONL run journal (schema header,
                   run_start, causal span_start/span_end tree, one line
                   per temperature, dynamics samples, reroute / exchange
                   events, run_end with a metrics snapshot). DEST is a
                   file path, or `unix:PATH` to stream to a listening
                   `rowfpga tail unix:PATH --listen`
  --metrics        print the phase/counter/histogram report after the run
  rowfpga tail     renders live progress (temperature, cost, acceptance,
                   per-replica best, ETA) from a journal file or socket
  rowfpga analyze  folds a finished journal into per-temperature
                   acceptance, delta-cost histograms, plateau and
                   replica-exchange analytics plus a folded-stack span
                   profile (flamegraph-ready), written under --out

SERVICE (layout-as-a-service; see DESIGN.md \u{a7}13):
  rowfpga serve runs a crash-safe job daemon on a unix socket: a bounded
  queue feeds a worker pool, every accepted job is durable in the spool
  before it is acknowledged, higher-priority submissions evict running
  jobs at a checkpoint (they resume later, bit-identically), deadline
  expiry completes with best-so-far, and a full queue rejects with a
  `retry_after_sec` hint. SIGTERM/SIGINT (or a client `shutdown`) drains:
  running jobs checkpoint, the queue persists, and the daemon exits 0; a
  restart on the same spool resumes where it left off — even after a
  SIGKILL. `submit` sends a job (embedding the netlist and any `--arch`
  file, so the daemon never reads the client's paths), `jobs` lists or
  inspects them, `cancel` stops one.

RESILIENCE (simultaneous flow only):
  --checkpoint FILE     atomically snapshot the full annealer state here
  --checkpoint-every N  snapshot cadence in temperature steps (default 5)
  --checkpoint-keep N   retained checkpoint generations besides the base
                        file (default 3; 0 = base file only); pruning
                        never removes the only valid snapshot
  --resume FILE         restart from a checkpoint; the file must match the
                        current architecture, netlist and seed
  --deadline SECS       wall-clock budget; the run finishes the current
                        temperature, checkpoints, and returns best-so-far
  --audit-every N       re-verify incremental state against ground truth
                        every N temperatures, repairing on divergence
  --temp-budget N       stop after N temperatures (deterministic deadline)

SIGINT (ctrl-c) is handled like a deadline: the current temperature
finishes, a final checkpoint is written, and the best layout so far is
returned with `stop: interrupted`.

FUZZING:
  rowfpga fuzz draws random architectures and netlists, replays random
  move scripts through the incremental engine, and cross-checks every
  iteration against from-scratch rebuilds (routing occupancy, detailed
  routes, Elmore timing to ULP tolerance), rollback identity, checkpoint
  round trips and crash windows, and K-replica determinism. Failures are
  reduced to 1-minimal scripts with delta debugging and written to
  `--corpus` as a `.net` + `.repro.json` pair; `--replay` re-runs one
  such pair. With neither `--seconds` nor `--iters`, 20 iterations run.
  Exit status is non-zero when any violation is found (or reproduced).

LINTING:
  rowfpga lint runs the workspace's domain lints (see DESIGN.md \u{a7}11
  and \u{a7}14): allocation-freedom in `rowfpga-lint: hot-path` modules,
  HashMap/clock bans in the deterministic solver crates, the per-crate
  panic budget ratchet against lint-budget.toml, feature-gating of
  fault hooks, the unsafe audit, and the interprocedural analyses
  (determinism taint, panic reachability, durability ordering, lock
  discipline) over the workspace call graph. `--json` writes the CI
  artifact report to stdout; `--fix-budget` re-records the panics /
  taint / reachability budgets (downward only); `--explain LINT`
  prints the rationale for one lint family (e.g. `--explain taint`)
  and exits. Exit status is non-zero when any violation is found.
";

fn parse_num<T: std::str::FromStr>(flag: &str, v: Option<&String>) -> Result<T, ArgError> {
    let v = v.ok_or_else(|| ArgError::MissingValue(flag.into()))?;
    v.parse().map_err(|_| ArgError::BadValue {
        flag: flag.into(),
        value: v.clone(),
        expected: "a number".into(),
    })
}

/// Parses common layout flags out of `args`, returning leftover positional
/// arguments.
fn parse_common(args: &[String]) -> Result<(CommonOpts, Vec<String>), ArgError> {
    let mut opts = CommonOpts::default();
    let mut positional = Vec::new();
    let mut cadence_given = false;
    let mut keep_given = false;
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        match a.as_str() {
            "--flow" => {
                opts.flow = FlowChoice::parse(
                    args.get(i + 1)
                        .ok_or_else(|| ArgError::MissingValue("--flow".into()))?,
                )?;
                i += 1;
            }
            "--fast" => opts.fast = true,
            "--seed" => {
                opts.seed = parse_num("--seed", args.get(i + 1))?;
                i += 1;
            }
            "--tracks" => {
                opts.tracks = Some(parse_num("--tracks", args.get(i + 1))?);
                i += 1;
            }
            "--svg" => {
                opts.svg = Some(
                    args.get(i + 1)
                        .ok_or_else(|| ArgError::MissingValue("--svg".into()))?
                        .clone(),
                );
                i += 1;
            }
            "--arch" => {
                opts.arch = Some(
                    args.get(i + 1)
                        .ok_or_else(|| ArgError::MissingValue("--arch".into()))?
                        .clone(),
                );
                i += 1;
            }
            "--ascii" => opts.ascii = true,
            "--report" => opts.report = true,
            "--journal" => {
                opts.journal = Some(
                    args.get(i + 1)
                        .ok_or_else(|| ArgError::MissingValue("--journal".into()))?
                        .clone(),
                );
                i += 1;
            }
            "--metrics" => opts.metrics = true,
            "--checkpoint" => {
                opts.checkpoint = Some(
                    args.get(i + 1)
                        .ok_or_else(|| ArgError::MissingValue("--checkpoint".into()))?
                        .clone(),
                );
                i += 1;
            }
            "--checkpoint-every" => {
                opts.checkpoint_every = parse_num("--checkpoint-every", args.get(i + 1))?;
                cadence_given = true;
                i += 1;
            }
            "--checkpoint-keep" => {
                opts.checkpoint_keep = parse_num("--checkpoint-keep", args.get(i + 1))?;
                keep_given = true;
                i += 1;
            }
            "--resume" => {
                opts.resume = Some(
                    args.get(i + 1)
                        .ok_or_else(|| ArgError::MissingValue("--resume".into()))?
                        .clone(),
                );
                i += 1;
            }
            "--deadline" => {
                let secs: f64 = parse_num("--deadline", args.get(i + 1))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err(ArgError::BadValue {
                        flag: "--deadline".into(),
                        value: args[i + 1].clone(),
                        expected: "a non-negative number of seconds".into(),
                    });
                }
                opts.deadline = Some(secs);
                i += 1;
            }
            "--audit-every" => {
                opts.audit_every = parse_num("--audit-every", args.get(i + 1))?;
                i += 1;
            }
            "--temp-budget" => {
                opts.temp_budget = Some(parse_num("--temp-budget", args.get(i + 1))?);
                i += 1;
            }
            "--threads" => {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| ArgError::MissingValue("--threads".into()))?;
                opts.threads = if v == "auto" {
                    ThreadsChoice::Auto
                } else {
                    ThreadsChoice::Count(parse_num("--threads", args.get(i + 1))?)
                };
                if opts.threads == ThreadsChoice::Count(0) {
                    return Err(ArgError::BadValue {
                        flag: "--threads".into(),
                        value: "0".into(),
                        expected: "at least one replica (or `auto`)".into(),
                    });
                }
                i += 1;
            }
            "--blif" | "--start" => positional.push(a.clone()), // handled by callers
            _ if a.starts_with("--") => return Err(ArgError::UnknownFlag(a.clone())),
            _ => positional.push(a.clone()),
        }
        i += 1;
    }
    if cadence_given && opts.checkpoint.is_none() && opts.resume.is_none() {
        return Err(ArgError::Conflict {
            detail: "`--checkpoint-every` has no effect without `--checkpoint`".into(),
        });
    }
    if keep_given && opts.checkpoint.is_none() && opts.resume.is_none() {
        return Err(ArgError::Conflict {
            detail: "`--checkpoint-keep` has no effect without `--checkpoint`".into(),
        });
    }
    if opts.checkpoint_every == 0 {
        return Err(ArgError::BadValue {
            flag: "--checkpoint-every".into(),
            value: "0".into(),
            expected: "a cadence of at least 1 temperature step".into(),
        });
    }
    if opts.flow == FlowChoice::Sequential {
        if let Some(flag) = opts.resilience_flag() {
            return Err(ArgError::Conflict {
                detail: format!(
                    "`{flag}` requires the simultaneous flow; the sequential \
                     baseline has no checkpoint/audit support (drop `--flow seq`)"
                ),
            });
        }
        if opts.threads.may_be_parallel() {
            return Err(ArgError::Conflict {
                detail: "`--threads` requires the simultaneous flow; the sequential \
                         baseline anneals placement only (drop `--flow seq`)"
                    .into(),
            });
        }
    }
    if opts.threads.may_be_parallel() {
        if let Some(flag) = opts.resilience_flag() {
            return Err(ArgError::Conflict {
                detail: format!(
                    "`{flag}` is not supported with `--threads`; parallel replicas \
                     have no checkpoint/audit support yet (drop `--threads`)"
                ),
            });
        }
    }
    Ok((opts, positional))
}

/// Parses a full argument vector (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, ArgError> {
    let Some(cmd) = args.first() else {
        return Err(ArgError::MissingCommand);
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "generate" => {
            let mut cells = 100usize;
            let mut inputs = 8usize;
            let mut outputs = 8usize;
            let mut seq = 6usize;
            let mut seed = 1u64;
            let mut output = "-".to_owned();
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--cells" => {
                        cells = parse_num("--cells", rest.get(i + 1))?;
                        i += 1;
                    }
                    "--inputs" => {
                        inputs = parse_num("--inputs", rest.get(i + 1))?;
                        i += 1;
                    }
                    "--outputs" => {
                        outputs = parse_num("--outputs", rest.get(i + 1))?;
                        i += 1;
                    }
                    "--seq" => {
                        seq = parse_num("--seq", rest.get(i + 1))?;
                        i += 1;
                    }
                    "--seed" => {
                        seed = parse_num("--seed", rest.get(i + 1))?;
                        i += 1;
                    }
                    "-o" | "--output" => {
                        output = rest
                            .get(i + 1)
                            .ok_or_else(|| ArgError::MissingValue("-o".into()))?
                            .clone();
                        i += 1;
                    }
                    other => return Err(ArgError::UnknownFlag(other.into())),
                }
                i += 1;
            }
            Ok(Command::Generate {
                cells,
                inputs,
                outputs,
                seq,
                seed,
                output,
            })
        }
        "layout" => {
            let (opts, positional) = parse_common(rest)?;
            let blif = positional.iter().any(|p| p == "--blif");
            let input = positional
                .iter()
                .find(|p| !p.starts_with("--"))
                .ok_or(ArgError::MissingInput)?
                .clone();
            Ok(Command::Layout { input, blif, opts })
        }
        "mintracks" => {
            let (opts, positional) = parse_common(rest)?;
            if let Some(flag) = opts.resilience_flag() {
                return Err(ArgError::Conflict {
                    detail: format!(
                        "`{flag}` does not apply to `mintracks`, which runs \
                         one layout per track count"
                    ),
                });
            }
            let blif = positional.iter().any(|p| p == "--blif");
            let mut start = 36usize;
            if let Some(i) = positional.iter().position(|p| p == "--start") {
                start = parse_num("--start", positional.get(i + 1))?;
            }
            let input = positional
                .iter()
                .enumerate()
                .find(|(i, p)| {
                    !p.starts_with("--")
                        && positional.get(i.wrapping_sub(1)).map(String::as_str) != Some("--start")
                })
                .map(|(_, p)| p.clone())
                .ok_or(ArgError::MissingInput)?;
            Ok(Command::MinTracks {
                input,
                blif,
                start,
                opts,
            })
        }
        "bench" => {
            let (opts, positional) = parse_common(rest)?;
            let name = positional
                .iter()
                .find(|p| !p.starts_with("--"))
                .ok_or(ArgError::MissingInput)?
                .clone();
            Ok(Command::Bench { name, opts })
        }
        "fuzz" => {
            let mut seconds = None;
            let mut iters = None;
            let mut seed = 1u64;
            let mut corpus = None;
            let mut min_cells = 20usize;
            let mut max_cells = 400usize;
            let mut replay = None;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--seconds" => {
                        seconds = Some(parse_num("--seconds", rest.get(i + 1))?);
                        i += 1;
                    }
                    "--iters" => {
                        iters = Some(parse_num("--iters", rest.get(i + 1))?);
                        i += 1;
                    }
                    "--seed" => {
                        seed = parse_num("--seed", rest.get(i + 1))?;
                        i += 1;
                    }
                    "--corpus" => {
                        corpus = Some(
                            rest.get(i + 1)
                                .ok_or_else(|| ArgError::MissingValue("--corpus".into()))?
                                .clone(),
                        );
                        i += 1;
                    }
                    "--min-cells" => {
                        min_cells = parse_num("--min-cells", rest.get(i + 1))?;
                        i += 1;
                    }
                    "--max-cells" => {
                        max_cells = parse_num("--max-cells", rest.get(i + 1))?;
                        i += 1;
                    }
                    "--replay" => {
                        replay = Some(
                            rest.get(i + 1)
                                .ok_or_else(|| ArgError::MissingValue("--replay".into()))?
                                .clone(),
                        );
                        i += 1;
                    }
                    other => return Err(ArgError::UnknownFlag(other.into())),
                }
                i += 1;
            }
            if min_cells > max_cells {
                return Err(ArgError::Conflict {
                    detail: format!("`--min-cells {min_cells}` exceeds `--max-cells {max_cells}`"),
                });
            }
            if replay.is_some() && (seconds.is_some() || iters.is_some() || corpus.is_some()) {
                return Err(ArgError::Conflict {
                    detail: "`--replay` re-runs one saved repro; the campaign flags \
                             `--seconds`/`--iters`/`--corpus` do not apply"
                        .into(),
                });
            }
            Ok(Command::Fuzz {
                seconds,
                iters,
                seed,
                corpus,
                min_cells,
                max_cells,
                replay,
            })
        }
        "tail" => {
            let mut source = None;
            let mut listen = false;
            let mut follow = true;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--listen" => listen = true,
                    "--no-follow" => follow = false,
                    other if other.starts_with("--") => {
                        return Err(ArgError::UnknownFlag(other.into()))
                    }
                    other => source = Some(other.to_owned()),
                }
                i += 1;
            }
            let source = source.ok_or(ArgError::MissingInput)?;
            if listen && !source.starts_with("unix:") {
                return Err(ArgError::Conflict {
                    detail: "`--listen` needs a `unix:PATH` source to bind".into(),
                });
            }
            Ok(Command::Tail {
                source,
                listen,
                follow,
            })
        }
        "analyze" => {
            let mut journal = None;
            let mut out_dir = "results".to_owned();
            let mut quiet = false;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--out" => {
                        out_dir = rest
                            .get(i + 1)
                            .ok_or_else(|| ArgError::MissingValue("--out".into()))?
                            .clone();
                        i += 1;
                    }
                    "--quiet" => quiet = true,
                    other if other.starts_with("--") => {
                        return Err(ArgError::UnknownFlag(other.into()))
                    }
                    other => journal = Some(other.to_owned()),
                }
                i += 1;
            }
            Ok(Command::Analyze {
                journal: journal.ok_or(ArgError::MissingInput)?,
                out_dir,
                quiet,
            })
        }
        "lint" => {
            let mut json = false;
            let mut fix_budget = false;
            let mut explain = None;
            let mut root = None;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--json" => json = true,
                    "--fix-budget" => fix_budget = true,
                    "--explain" => {
                        explain = Some(
                            rest.get(i + 1)
                                .ok_or_else(|| ArgError::MissingValue("--explain".into()))?
                                .clone(),
                        );
                        i += 1;
                    }
                    "--root" => {
                        root = Some(
                            rest.get(i + 1)
                                .ok_or_else(|| ArgError::MissingValue("--root".into()))?
                                .clone(),
                        );
                        i += 1;
                    }
                    other => return Err(ArgError::UnknownFlag(other.into())),
                }
                i += 1;
            }
            Ok(Command::Lint {
                json,
                fix_budget,
                explain,
                root,
            })
        }
        "serve" => {
            let mut socket = None;
            let mut spool = None;
            let mut workers = 1usize;
            let mut queue = 16usize;
            let mut checkpoint_every = 1usize;
            let mut checkpoint_keep = 3usize;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--socket" => {
                        socket = Some(take_value("--socket", rest.get(i + 1))?);
                        i += 1;
                    }
                    "--spool" => {
                        spool = Some(take_value("--spool", rest.get(i + 1))?);
                        i += 1;
                    }
                    "--workers" => {
                        workers = parse_num("--workers", rest.get(i + 1))?;
                        i += 1;
                    }
                    "--queue" => {
                        queue = parse_num("--queue", rest.get(i + 1))?;
                        i += 1;
                    }
                    "--checkpoint-every" => {
                        checkpoint_every = parse_num("--checkpoint-every", rest.get(i + 1))?;
                        i += 1;
                    }
                    "--checkpoint-keep" => {
                        checkpoint_keep = parse_num("--checkpoint-keep", rest.get(i + 1))?;
                        i += 1;
                    }
                    other => return Err(ArgError::UnknownFlag(other.into())),
                }
                i += 1;
            }
            for (flag, value, min) in [
                ("--workers", workers, 1),
                ("--queue", queue, 1),
                ("--checkpoint-every", checkpoint_every, 1),
            ] {
                if value < min {
                    return Err(ArgError::BadValue {
                        flag: flag.into(),
                        value: "0".into(),
                        expected: "at least 1".into(),
                    });
                }
            }
            Ok(Command::Serve {
                socket: socket.ok_or_else(|| ArgError::MissingFlag("--socket".into()))?,
                spool: spool.ok_or_else(|| ArgError::MissingFlag("--spool".into()))?,
                workers,
                queue,
                checkpoint_every,
                checkpoint_keep,
            })
        }
        "submit" => {
            let mut input = None;
            let mut socket = None;
            let mut seed = 1u64;
            let mut priority = 0i64;
            let mut deadline = None;
            let mut fast = false;
            let mut tracks = None;
            let mut arch = None;
            let mut journal = None;
            let mut wait = false;
            let mut timeout = 600.0f64;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--socket" => {
                        socket = Some(take_value("--socket", rest.get(i + 1))?);
                        i += 1;
                    }
                    "--seed" => {
                        seed = parse_num("--seed", rest.get(i + 1))?;
                        i += 1;
                    }
                    "--priority" => {
                        priority = parse_num("--priority", rest.get(i + 1))?;
                        i += 1;
                    }
                    "--deadline" => {
                        let secs: f64 = parse_num("--deadline", rest.get(i + 1))?;
                        if !secs.is_finite() || secs <= 0.0 {
                            return Err(ArgError::BadValue {
                                flag: "--deadline".into(),
                                value: rest[i + 1].clone(),
                                expected: "a positive number of seconds".into(),
                            });
                        }
                        deadline = Some(secs);
                        i += 1;
                    }
                    "--fast" => fast = true,
                    "--tracks" => {
                        tracks = Some(parse_num("--tracks", rest.get(i + 1))?);
                        i += 1;
                    }
                    "--arch" => {
                        arch = Some(take_value("--arch", rest.get(i + 1))?);
                        i += 1;
                    }
                    "--journal" => {
                        journal = Some(take_value("--journal", rest.get(i + 1))?);
                        i += 1;
                    }
                    "--wait" => wait = true,
                    "--timeout" => {
                        let secs: f64 = parse_num("--timeout", rest.get(i + 1))?;
                        if !secs.is_finite() || secs <= 0.0 {
                            return Err(ArgError::BadValue {
                                flag: "--timeout".into(),
                                value: rest[i + 1].clone(),
                                expected: "a positive number of seconds".into(),
                            });
                        }
                        timeout = secs;
                        i += 1;
                    }
                    other if other.starts_with("--") => {
                        return Err(ArgError::UnknownFlag(other.into()))
                    }
                    other => input = Some(other.to_owned()),
                }
                i += 1;
            }
            Ok(Command::Submit {
                input: input.ok_or(ArgError::MissingInput)?,
                socket: socket.ok_or_else(|| ArgError::MissingFlag("--socket".into()))?,
                seed,
                priority,
                deadline,
                fast,
                tracks,
                arch,
                journal,
                wait,
                timeout,
            })
        }
        "jobs" => {
            let (socket, job) = parse_socket_and_job(rest)?;
            Ok(Command::Jobs { socket, job })
        }
        "cancel" => {
            let (socket, job) = parse_socket_and_job(rest)?;
            Ok(Command::CancelJob {
                socket,
                job: job.ok_or(ArgError::MissingInput)?,
            })
        }
        other => Err(ArgError::UnknownCommand(other.into())),
    }
}

fn take_value(flag: &str, v: Option<&String>) -> Result<String, ArgError> {
    v.cloned()
        .ok_or_else(|| ArgError::MissingValue(flag.into()))
}

/// Parses the shared `--socket PATH [JOB]` shape of `jobs` and `cancel`.
fn parse_socket_and_job(rest: &[String]) -> Result<(String, Option<String>), ArgError> {
    let mut socket = None;
    let mut job = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--socket" => {
                socket = Some(take_value("--socket", rest.get(i + 1))?);
                i += 1;
            }
            other if other.starts_with("--") => return Err(ArgError::UnknownFlag(other.into())),
            other => job = Some(other.to_owned()),
        }
        i += 1;
    }
    Ok((
        socket.ok_or_else(|| ArgError::MissingFlag("--socket".into()))?,
        job,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_generate_defaults_and_overrides() {
        let c = parse_args(&v(&["generate"])).unwrap();
        assert!(matches!(c, Command::Generate { cells: 100, .. }));
        let c = parse_args(&v(&[
            "generate", "--cells", "200", "--seq", "12", "-o", "x.net",
        ]))
        .unwrap();
        match c {
            Command::Generate {
                cells, seq, output, ..
            } => {
                assert_eq!(cells, 200);
                assert_eq!(seq, 12);
                assert_eq!(output, "x.net");
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn parses_layout_with_options() {
        let c = parse_args(&v(&[
            "layout", "d.net", "--flow", "seq", "--fast", "--tracks", "20", "--svg", "o.svg",
            "--report",
        ]))
        .unwrap();
        match c {
            Command::Layout { input, blif, opts } => {
                assert_eq!(input, "d.net");
                assert!(!blif);
                assert_eq!(opts.flow, FlowChoice::Sequential);
                assert!(opts.fast);
                assert_eq!(opts.tracks, Some(20));
                assert_eq!(opts.svg.as_deref(), Some("o.svg"));
                assert!(opts.report);
                assert_eq!(opts.journal, None);
                assert!(!opts.metrics);
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn parses_observability_flags() {
        let c = parse_args(&v(&[
            "bench",
            "s1",
            "--fast",
            "--journal",
            "run.jsonl",
            "--metrics",
        ]))
        .unwrap();
        match c {
            Command::Bench { opts, .. } => {
                assert_eq!(opts.journal.as_deref(), Some("run.jsonl"));
                assert!(opts.metrics);
            }
            _ => panic!("wrong command"),
        }
        assert!(matches!(
            parse_args(&v(&["layout", "d.net", "--journal"])).unwrap_err(),
            ArgError::MissingValue(_)
        ));
        assert!(USAGE.contains("--journal"));
    }

    #[test]
    fn parses_blif_flag() {
        let c = parse_args(&v(&["layout", "d.blif", "--blif"])).unwrap();
        assert!(matches!(c, Command::Layout { blif: true, .. }));
    }

    #[test]
    fn parses_mintracks_with_start() {
        let c = parse_args(&v(&["mintracks", "d.net", "--start", "24"])).unwrap();
        match c {
            Command::MinTracks { input, start, .. } => {
                assert_eq!(input, "d.net");
                assert_eq!(start, 24);
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn parses_bench() {
        let c = parse_args(&v(&["bench", "cse", "--fast"])).unwrap();
        match c {
            Command::Bench { name, opts } => {
                assert_eq!(name, "cse");
                assert!(opts.fast);
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn reports_errors_helpfully() {
        assert_eq!(parse_args(&[]).unwrap_err(), ArgError::MissingCommand);
        assert!(matches!(
            parse_args(&v(&["frobnicate"])).unwrap_err(),
            ArgError::UnknownCommand(_)
        ));
        assert!(matches!(
            parse_args(&v(&["layout"])).unwrap_err(),
            ArgError::MissingInput
        ));
        assert!(matches!(
            parse_args(&v(&["layout", "d.net", "--bogus"])).unwrap_err(),
            ArgError::UnknownFlag(_)
        ));
        assert!(matches!(
            parse_args(&v(&["layout", "d.net", "--seed"])).unwrap_err(),
            ArgError::MissingValue(_)
        ));
        assert!(matches!(
            parse_args(&v(&["layout", "d.net", "--flow", "magic"])).unwrap_err(),
            ArgError::BadValue { .. }
        ));
        assert!(matches!(
            parse_args(&v(&["generate", "--cells", "many"])).unwrap_err(),
            ArgError::BadValue { .. }
        ));
    }

    #[test]
    fn parses_resilience_flags() {
        let c = parse_args(&v(&[
            "layout",
            "d.net",
            "--checkpoint",
            "ck.json",
            "--checkpoint-every",
            "3",
            "--deadline",
            "2.5",
            "--audit-every",
            "4",
            "--temp-budget",
            "10",
        ]))
        .unwrap();
        match c {
            Command::Layout { opts, .. } => {
                assert_eq!(opts.checkpoint.as_deref(), Some("ck.json"));
                assert_eq!(opts.checkpoint_every, 3);
                assert_eq!(opts.deadline, Some(2.5));
                assert_eq!(opts.audit_every, 4);
                assert_eq!(opts.temp_budget, Some(10));
                assert_eq!(opts.resume, None);
            }
            _ => panic!("wrong command"),
        }
        let c = parse_args(&v(&["layout", "d.net", "--resume", "ck.json"])).unwrap();
        match c {
            Command::Layout { opts, .. } => assert_eq!(opts.resume.as_deref(), Some("ck.json")),
            _ => panic!("wrong command"),
        }
        assert!(USAGE.contains("--checkpoint"));
        assert!(USAGE.contains("--resume"));
    }

    #[test]
    fn parses_threads() {
        let c = parse_args(&v(&["layout", "d.net", "--threads", "4"])).unwrap();
        match c {
            Command::Layout { opts, .. } => assert_eq!(opts.threads, ThreadsChoice::Count(4)),
            _ => panic!("wrong command"),
        }
        // Default is a single (sequential) replica.
        match parse_args(&v(&["layout", "d.net"])).unwrap() {
            Command::Layout { opts, .. } => assert_eq!(opts.threads, ThreadsChoice::Count(1)),
            _ => panic!("wrong command"),
        }
        // `auto` defers the count to the host's parallelism.
        match parse_args(&v(&["layout", "d.net", "--threads", "auto"])).unwrap() {
            Command::Layout { opts, .. } => {
                assert_eq!(opts.threads, ThreadsChoice::Auto);
                assert_eq!(opts.threads.resolve(8), 8);
                assert_eq!(opts.threads.resolve(0), 1);
            }
            _ => panic!("wrong command"),
        }
        assert_eq!(ThreadsChoice::Count(4).resolve(1), 4, "explicit N wins");
        assert!(USAGE.contains("--threads"));
    }

    #[test]
    fn rejects_bad_threads_combos() {
        // Zero replicas is meaningless.
        assert!(matches!(
            parse_args(&v(&["layout", "d.net", "--threads", "0"])).unwrap_err(),
            ArgError::BadValue { .. }
        ));
        // The sequential baseline has no parallel mode.
        assert!(matches!(
            parse_args(&v(&["layout", "d.net", "--flow", "seq", "--threads", "2"])).unwrap_err(),
            ArgError::Conflict { .. }
        ));
        // Parallel replicas do not checkpoint/audit (yet).
        for flag in [
            &["--checkpoint", "ck.json"][..],
            &["--resume", "ck.json"][..],
            &["--deadline", "5"][..],
            &["--audit-every", "2"][..],
            &["--temp-budget", "9"][..],
        ] {
            let mut args = v(&["layout", "d.net", "--threads", "2"]);
            args.extend(flag.iter().map(|s| s.to_string()));
            let err = parse_args(&args).unwrap_err();
            assert!(
                matches!(&err, ArgError::Conflict { detail } if detail.contains(flag[0])),
                "{flag:?} with --threads must conflict, got {err:?}"
            );
        }
        // --threads 1 is the sequential engine; resilience still works.
        assert!(parse_args(&v(&[
            "layout",
            "d.net",
            "--threads",
            "1",
            "--checkpoint",
            "ck.json"
        ]))
        .is_ok());
        // `auto` may resolve to >1 replica, so the same conflicts apply
        // regardless of the host this parse runs on.
        assert!(matches!(
            parse_args(&v(&[
                "layout",
                "d.net",
                "--threads",
                "auto",
                "--deadline",
                "5"
            ]))
            .unwrap_err(),
            ArgError::Conflict { .. }
        ));
        assert!(matches!(
            parse_args(&v(&[
                "layout",
                "d.net",
                "--flow",
                "seq",
                "--threads",
                "auto"
            ]))
            .unwrap_err(),
            ArgError::Conflict { .. }
        ));
    }

    #[test]
    fn parses_tail_and_analyze() {
        match parse_args(&v(&["tail", "run.jsonl", "--no-follow"])).unwrap() {
            Command::Tail {
                source,
                listen,
                follow,
            } => {
                assert_eq!(source, "run.jsonl");
                assert!(!listen);
                assert!(!follow);
            }
            _ => panic!("wrong command"),
        }
        match parse_args(&v(&["tail", "unix:/tmp/r.sock", "--listen"])).unwrap() {
            Command::Tail { source, listen, .. } => {
                assert_eq!(source, "unix:/tmp/r.sock");
                assert!(listen);
            }
            _ => panic!("wrong command"),
        }
        assert!(matches!(
            parse_args(&v(&["tail", "run.jsonl", "--listen"])).unwrap_err(),
            ArgError::Conflict { .. }
        ));
        assert!(matches!(
            parse_args(&v(&["tail"])).unwrap_err(),
            ArgError::MissingInput
        ));
        match parse_args(&v(&["analyze", "run.jsonl"])).unwrap() {
            Command::Analyze {
                journal,
                out_dir,
                quiet,
            } => {
                assert_eq!(journal, "run.jsonl");
                assert_eq!(out_dir, "results");
                assert!(!quiet);
            }
            _ => panic!("wrong command"),
        }
        match parse_args(&v(&["analyze", "run.jsonl", "--out", "rep", "--quiet"])).unwrap() {
            Command::Analyze { out_dir, quiet, .. } => {
                assert_eq!(out_dir, "rep");
                assert!(quiet);
            }
            _ => panic!("wrong command"),
        }
        assert!(USAGE.contains("rowfpga tail"));
        assert!(USAGE.contains("rowfpga analyze"));
    }

    #[test]
    fn rejects_contradictory_resilience_combos() {
        // Cadence without a checkpoint destination is a no-op the user
        // almost certainly did not intend.
        assert!(matches!(
            parse_args(&v(&["layout", "d.net", "--checkpoint-every", "3"])).unwrap_err(),
            ArgError::Conflict { .. }
        ));
        // ... but it is fine when resuming (the resumed run checkpoints on).
        assert!(parse_args(&v(&[
            "layout",
            "d.net",
            "--resume",
            "ck.json",
            "--checkpoint",
            "ck.json",
            "--checkpoint-every",
            "2",
        ]))
        .is_ok());
        // The sequential baseline has no resilience support.
        for flag in [
            &["--checkpoint", "ck.json"][..],
            &["--resume", "ck.json"][..],
            &["--deadline", "5"][..],
            &["--audit-every", "2"][..],
            &["--temp-budget", "9"][..],
        ] {
            let mut args = v(&["layout", "d.net", "--flow", "seq"]);
            args.extend(flag.iter().map(|s| s.to_string()));
            let err = parse_args(&args).unwrap_err();
            assert!(
                matches!(&err, ArgError::Conflict { detail } if detail.contains(flag[0])),
                "{flag:?} with --flow seq must conflict, got {err:?}"
            );
        }
        // mintracks runs many layouts; a single checkpoint is meaningless.
        assert!(matches!(
            parse_args(&v(&["mintracks", "d.net", "--checkpoint", "ck.json"])).unwrap_err(),
            ArgError::Conflict { .. }
        ));
        // Degenerate values get value errors, not silent clamping.
        assert!(matches!(
            parse_args(&v(&[
                "layout",
                "d.net",
                "--checkpoint",
                "ck.json",
                "--checkpoint-every",
                "0"
            ]))
            .unwrap_err(),
            ArgError::BadValue { .. }
        ));
        assert!(matches!(
            parse_args(&v(&["layout", "d.net", "--deadline", "-1"])).unwrap_err(),
            ArgError::BadValue { .. }
        ));
    }

    #[test]
    fn parses_fuzz() {
        match parse_args(&v(&["fuzz"])).unwrap() {
            Command::Fuzz {
                seconds,
                iters,
                seed,
                corpus,
                min_cells,
                max_cells,
                replay,
            } => {
                assert_eq!(seconds, None);
                assert_eq!(iters, None);
                assert_eq!(seed, 1);
                assert_eq!(corpus, None);
                assert_eq!(min_cells, 20);
                assert_eq!(max_cells, 400);
                assert_eq!(replay, None);
            }
            _ => panic!("wrong command"),
        }
        match parse_args(&v(&[
            "fuzz",
            "--seconds",
            "60",
            "--seed",
            "7",
            "--corpus",
            "corpus/",
            "--min-cells",
            "30",
            "--max-cells",
            "90",
        ]))
        .unwrap()
        {
            Command::Fuzz {
                seconds,
                seed,
                corpus,
                min_cells,
                max_cells,
                ..
            } => {
                assert_eq!(seconds, Some(60));
                assert_eq!(seed, 7);
                assert_eq!(corpus.as_deref(), Some("corpus/"));
                assert_eq!(min_cells, 30);
                assert_eq!(max_cells, 90);
            }
            _ => panic!("wrong command"),
        }
        match parse_args(&v(&["fuzz", "--replay", "x.repro.json"])).unwrap() {
            Command::Fuzz { replay, .. } => {
                assert_eq!(replay.as_deref(), Some("x.repro.json"));
            }
            _ => panic!("wrong command"),
        }
        assert!(matches!(
            parse_args(&v(&["fuzz", "--replay", "x.json", "--iters", "3"])).unwrap_err(),
            ArgError::Conflict { .. }
        ));
        assert!(matches!(
            parse_args(&v(&["fuzz", "--min-cells", "50", "--max-cells", "20"])).unwrap_err(),
            ArgError::Conflict { .. }
        ));
        assert!(matches!(
            parse_args(&v(&["fuzz", "--bogus"])).unwrap_err(),
            ArgError::UnknownFlag(_)
        ));
        assert!(USAGE.contains("rowfpga fuzz"));
    }

    #[test]
    fn parses_checkpoint_keep() {
        match parse_args(&v(&[
            "layout",
            "d.net",
            "--checkpoint",
            "ck.json",
            "--checkpoint-keep",
            "5",
        ]))
        .unwrap()
        {
            Command::Layout { opts, .. } => assert_eq!(opts.checkpoint_keep, 5),
            _ => panic!("wrong command"),
        }
        // Default retention is three generations.
        match parse_args(&v(&["layout", "d.net", "--checkpoint", "ck.json"])).unwrap() {
            Command::Layout { opts, .. } => assert_eq!(opts.checkpoint_keep, 3),
            _ => panic!("wrong command"),
        }
        // Retention without a checkpoint destination is a silent no-op.
        assert!(matches!(
            parse_args(&v(&["layout", "d.net", "--checkpoint-keep", "2"])).unwrap_err(),
            ArgError::Conflict { .. }
        ));
        assert!(USAGE.contains("--checkpoint-keep"));
    }

    #[test]
    fn parses_serve() {
        match parse_args(&v(&["serve", "--socket", "/tmp/s", "--spool", "/tmp/d"])).unwrap() {
            Command::Serve {
                socket,
                spool,
                workers,
                queue,
                checkpoint_every,
                checkpoint_keep,
            } => {
                assert_eq!(socket, "/tmp/s");
                assert_eq!(spool, "/tmp/d");
                assert_eq!(workers, 1);
                assert_eq!(queue, 16);
                assert_eq!(checkpoint_every, 1);
                assert_eq!(checkpoint_keep, 3);
            }
            _ => panic!("wrong command"),
        }
        match parse_args(&v(&[
            "serve",
            "--socket",
            "s",
            "--spool",
            "d",
            "--workers",
            "2",
            "--queue",
            "4",
        ]))
        .unwrap()
        {
            Command::Serve { workers, queue, .. } => {
                assert_eq!(workers, 2);
                assert_eq!(queue, 4);
            }
            _ => panic!("wrong command"),
        }
        assert!(matches!(
            parse_args(&v(&["serve", "--spool", "d"])).unwrap_err(),
            ArgError::MissingFlag(f) if f == "--socket"
        ));
        assert!(matches!(
            parse_args(&v(&["serve", "--socket", "s"])).unwrap_err(),
            ArgError::MissingFlag(f) if f == "--spool"
        ));
        assert!(matches!(
            parse_args(&v(&[
                "serve", "--socket", "s", "--spool", "d", "--queue", "0"
            ]))
            .unwrap_err(),
            ArgError::BadValue { .. }
        ));
        assert!(USAGE.contains("rowfpga serve"));
    }

    #[test]
    fn parses_submit_jobs_and_cancel() {
        match parse_args(&v(&[
            "submit",
            "d.net",
            "--socket",
            "s",
            "--seed",
            "7",
            "--priority",
            "-2",
            "--deadline",
            "3.5",
            "--fast",
            "--wait",
            "--timeout",
            "30",
        ]))
        .unwrap()
        {
            Command::Submit {
                input,
                socket,
                seed,
                priority,
                deadline,
                fast,
                wait,
                timeout,
                ..
            } => {
                assert_eq!(input, "d.net");
                assert_eq!(socket, "s");
                assert_eq!(seed, 7);
                assert_eq!(priority, -2);
                assert_eq!(deadline, Some(3.5));
                assert!(fast);
                assert!(wait);
                assert_eq!(timeout, 30.0);
            }
            _ => panic!("wrong command"),
        }
        assert!(matches!(
            parse_args(&v(&["submit", "d.net"])).unwrap_err(),
            ArgError::MissingFlag(_)
        ));
        assert!(matches!(
            parse_args(&v(&["submit", "--socket", "s"])).unwrap_err(),
            ArgError::MissingInput
        ));
        assert!(matches!(
            parse_args(&v(&["submit", "d.net", "--socket", "s", "--deadline", "0"])).unwrap_err(),
            ArgError::BadValue { .. }
        ));
        match parse_args(&v(&["jobs", "--socket", "s"])).unwrap() {
            Command::Jobs { socket, job } => {
                assert_eq!(socket, "s");
                assert_eq!(job, None);
            }
            _ => panic!("wrong command"),
        }
        match parse_args(&v(&["jobs", "--socket", "s", "job-000001"])).unwrap() {
            Command::Jobs { job, .. } => assert_eq!(job.as_deref(), Some("job-000001")),
            _ => panic!("wrong command"),
        }
        match parse_args(&v(&["cancel", "--socket", "s", "job-000001"])).unwrap() {
            Command::CancelJob { socket, job } => {
                assert_eq!(socket, "s");
                assert_eq!(job, "job-000001");
            }
            _ => panic!("wrong command"),
        }
        assert!(matches!(
            parse_args(&v(&["cancel", "--socket", "s"])).unwrap_err(),
            ArgError::MissingInput
        ));
        assert!(USAGE.contains("rowfpga submit"));
    }

    #[test]
    fn help_is_recognized() {
        for h in ["help", "--help", "-h"] {
            assert_eq!(parse_args(&v(&[h])).unwrap(), Command::Help);
        }
        assert!(USAGE.contains("rowfpga layout"));
    }
}
