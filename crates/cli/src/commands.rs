//! Subcommand implementations.

use std::error::Error;
use std::fmt;

use rowfpga_arch::Architecture;
use rowfpga_baseline::{SeqPrConfig, SequentialPlaceRoute};
use rowfpga_core::{
    render_ascii, render_svg, size_architecture, LayoutError, LayoutResult, SimPrConfig,
    SimultaneousPlaceRoute, SizingConfig, StopFlag,
};
use rowfpga_netlist::{
    generate, paper_preset, parse_blif, parse_netlist, write_netlist, GenerateConfig, Netlist,
    PaperBenchmark,
};
use rowfpga_obs::{Event, Obs};
use rowfpga_timing::Sta;

use crate::args::{Command, CommonOpts, FlowChoice, ThreadsChoice, USAGE};

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    /// File I/O failed.
    Io(std::io::Error),
    /// Netlist parsing failed.
    Parse(String),
    /// Layout failed.
    Layout(LayoutError),
    /// Unknown benchmark name.
    UnknownBenchmark(String),
    /// The design could not be routed at any scanned track count.
    Unroutable {
        /// Scan start.
        start: usize,
    },
    /// The fuzzer found (or a replay reproduced) oracle violations.
    FuzzViolations {
        /// How many violations were found.
        count: usize,
    },
    /// The domain lint engine could not run (I/O, bad budget file,
    /// attempted upward ratchet).
    Lint(rowfpga_lint::EngineError),
    /// The domain lint engine found violations.
    LintViolations {
        /// How many violations were found.
        count: usize,
    },
    /// `--explain` named a lint family the engine does not know.
    UnknownLint {
        /// The name the user typed.
        lint: String,
    },
    /// A service command failed (daemon rejection, protocol error, wait
    /// timeout, or a platform without unix sockets).
    Service(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Parse(e) => write!(f, "parse error: {e}"),
            CliError::Layout(e) => write!(f, "layout error: {e}"),
            CliError::UnknownBenchmark(n) => {
                write!(
                    f,
                    "unknown benchmark `{n}` (try s1, cse, ex1, bw, s1a, big529)"
                )
            }
            CliError::Unroutable { start } => {
                write!(f, "design is unroutable even at {start} tracks/channel")
            }
            CliError::FuzzViolations { count } => {
                write!(f, "fuzzing found {count} oracle violation(s)")
            }
            CliError::Lint(e) => write!(f, "lint error: {e}"),
            CliError::LintViolations { count } => {
                write!(f, "lint found {count} violation(s)")
            }
            CliError::UnknownLint { lint } => {
                write!(
                    f,
                    "unknown lint `{lint}` (try {})",
                    rowfpga_lint::EXPLAINABLE.join(", ")
                )
            }
            CliError::Service(e) => write!(f, "service error: {e}"),
        }
    }
}

impl Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<LayoutError> for CliError {
    fn from(e: LayoutError) -> Self {
        CliError::Layout(e)
    }
}

fn load_netlist(path: &str, blif: bool) -> Result<Netlist, CliError> {
    let text = std::fs::read_to_string(path)?;
    if blif {
        parse_blif(&text).map_err(|e| CliError::Parse(e.to_string()))
    } else {
        parse_netlist(&text).map_err(|e| CliError::Parse(e.to_string()))
    }
}

fn sized_arch(netlist: &Netlist, opts: &CommonOpts) -> Result<Architecture, CliError> {
    if let Some(path) = &opts.arch {
        let text = std::fs::read_to_string(path)?;
        let arch =
            rowfpga_arch::parse_architecture(&text).map_err(|e| CliError::Parse(e.to_string()))?;
        return match opts.tracks {
            Some(t) => arch
                .with_tracks(t)
                .map_err(|e| CliError::Parse(e.to_string())),
            None => Ok(arch),
        };
    }
    let mut sizing = SizingConfig::default();
    if let Some(t) = opts.tracks {
        sizing.tracks_per_channel = t;
    }
    size_architecture(netlist, &sizing).map_err(|e| CliError::Parse(format!("sizing failed: {e}")))
}

/// The host's core count, used to resolve `--threads auto` and to warn
/// about oversubscribed explicit counts.
fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Builds the observability handle the common flags ask for: a JSONL
/// journal sink for `--journal` (a file path or a `unix:PATH` socket
/// spec), metrics-only for bare `--metrics`, and the zero-overhead
/// disabled handle otherwise.
fn build_obs(opts: &CommonOpts) -> Result<Obs, CliError> {
    if let Some(spec) = &opts.journal {
        Ok(Obs::with_sink(rowfpga_obs::open_sink(spec)?))
    } else if opts.metrics {
        Ok(Obs::metrics_only())
    } else {
        Ok(Obs::disabled())
    }
}

fn run_layout(
    arch: &Architecture,
    netlist: &Netlist,
    opts: &CommonOpts,
    label: &str,
    obs: &Obs,
    stop: &StopFlag,
) -> Result<LayoutResult, CliError> {
    Ok(match opts.flow {
        FlowChoice::Simultaneous => {
            let base = if opts.fast {
                SimPrConfig::fast()
            } else {
                SimPrConfig::default()
            };
            let mut cfg = base.with_seed(opts.seed);
            cfg.resilience.checkpoint_path = opts.checkpoint.as_ref().map(std::path::PathBuf::from);
            cfg.resilience.checkpoint_every = opts.checkpoint_every;
            cfg.resilience.checkpoint_keep = opts.checkpoint_keep;
            cfg.resilience.resume_path = opts.resume.as_ref().map(std::path::PathBuf::from);
            cfg.resilience.deadline = opts.deadline.map(std::time::Duration::from_secs_f64);
            cfg.resilience.audit_every = opts.audit_every;
            cfg.resilience.temp_budget = opts.temp_budget;
            let cores = host_cores();
            let threads = opts.threads.resolve(cores);
            cfg.threads = threads;
            if let ThreadsChoice::Count(n) = opts.threads {
                // An explicit count always wins, but replicas beyond the
                // host's cores time-slice instead of running concurrently.
                if n > cores {
                    obs.emit(Event::Warning {
                        code: "oversubscribed".into(),
                        detail: format!("{n} replicas on {cores} host core(s)"),
                    });
                    eprintln!(
                        "warning: --threads {n} oversubscribes this {cores}-core host; \
                         replicas will time-slice (use --threads auto to cap at the cores)"
                    );
                }
            }
            let tool = SimultaneousPlaceRoute::new(cfg);
            if threads > 1 {
                // The parser rejects --threads plus resilience flags, so
                // the parallel path never silently drops a checkpoint.
                tool.run_parallel(arch, netlist, label, obs)?
            } else {
                tool.run_with_stop(arch, netlist, label, obs, stop)?
            }
        }
        FlowChoice::Sequential => {
            let base = if opts.fast {
                SeqPrConfig::fast()
            } else {
                SeqPrConfig::default()
            };
            SequentialPlaceRoute::new(base.with_seed(opts.seed))
                .run_observed(arch, netlist, label, obs)?
        }
    })
}

fn print_layout_outputs(
    arch: &Architecture,
    netlist: &Netlist,
    result: &LayoutResult,
    opts: &CommonOpts,
    out: &mut impl std::io::Write,
) -> Result<(), CliError> {
    writeln!(
        out,
        "flow: {:?} | routed: {} (G={}, D={}) | worst path {:.2} ns | {} moves in {:.2?} | stop: {}{}",
        opts.flow,
        result.fully_routed,
        result.globally_unrouted,
        result.incomplete,
        result.worst_delay / 1000.0,
        result.total_moves,
        result.runtime,
        result.stop_reason,
        if result.repairs > 0 {
            format!(" | repairs: {}", result.repairs)
        } else {
            String::new()
        }
    )?;
    if opts.report {
        let sta = Sta::analyze(arch, netlist, &result.placement, &result.routing)
            .map_err(|e| CliError::Parse(e.to_string()))?;
        writeln!(out, "\n{}", sta.report(netlist))?;
        writeln!(out, "{}", result.routing.occupancy_report(arch))?;
    }
    if opts.ascii {
        writeln!(
            out,
            "\n{}",
            render_ascii(arch, netlist, &result.placement, &result.routing)
        )?;
    }
    if let Some(path) = &opts.svg {
        let svg = render_svg(arch, netlist, &result.placement, &result.routing);
        std::fs::write(path, svg)?;
        writeln!(out, "layout plot written to {path}")?;
    }
    Ok(())
}

/// Finishes the observability side of a run: prints the metrics report for
/// `--metrics` and notes where the journal went for `--journal`.
fn print_obs_outputs(
    obs: &Obs,
    opts: &CommonOpts,
    out: &mut impl std::io::Write,
) -> Result<(), CliError> {
    if opts.metrics {
        if let Some(report) = obs.render_report() {
            writeln!(out, "\n{report}")?;
        }
    }
    if let Some(spec) = &opts.journal {
        if spec.starts_with(rowfpga_obs::SOCKET_SPEC_PREFIX) {
            writeln!(out, "run journal streamed to {spec}")?;
        } else {
            writeln!(out, "run journal written to {spec}")?;
        }
    }
    Ok(())
}

/// Implements `rowfpga analyze`: folds a journal into the convergence
/// report, writing the JSON / text / folded-stack artifacts under
/// `out_dir`.
fn run_analyze(
    journal: &str,
    out_dir: &str,
    quiet: bool,
    out: &mut impl std::io::Write,
) -> Result<(), CliError> {
    let text = std::fs::read_to_string(journal)?;
    let analysis =
        rowfpga_obs::analyze_journal(&text).map_err(|e| CliError::Parse(e.to_string()))?;
    std::fs::create_dir_all(out_dir)?;
    let stem = std::path::Path::new(journal).file_stem().map_or_else(
        || "journal".to_owned(),
        |s| s.to_string_lossy().into_owned(),
    );
    let dir = std::path::Path::new(out_dir);
    let json_path = dir.join(format!("{stem}.analysis.json"));
    let txt_path = dir.join(format!("{stem}.analysis.txt"));
    let folded_path = dir.join(format!("{stem}.folded"));
    std::fs::write(&json_path, analysis.to_json().to_string_pretty() + "\n")?;
    std::fs::write(&txt_path, analysis.render_text())?;
    std::fs::write(&folded_path, analysis.folded_text())?;
    if !quiet {
        writeln!(out, "{}", analysis.render_text().trim_end())?;
    }
    writeln!(
        out,
        "analysis written to {} (+ .txt, .folded)",
        json_path.display()
    )?;
    Ok(())
}

/// Executes a parsed command, writing human-readable output to `out`.
///
/// # Errors
///
/// Returns a [`CliError`] describing any I/O, parse or layout failure.
pub fn run_command(command: &Command, out: &mut impl std::io::Write) -> Result<(), CliError> {
    run_command_with_stop(command, out, &StopFlag::none())
}

/// Like [`run_command`], but layout runs also stop gracefully — finishing
/// the current temperature and writing a final checkpoint — when `stop`
/// fires (the binary wires this to SIGINT).
///
/// # Errors
///
/// Returns a [`CliError`] describing any I/O, parse or layout failure.
pub fn run_command_with_stop(
    command: &Command,
    out: &mut impl std::io::Write,
    stop: &StopFlag,
) -> Result<(), CliError> {
    match command {
        Command::Help => {
            write!(out, "{USAGE}")?;
            Ok(())
        }
        Command::Generate {
            cells,
            inputs,
            outputs,
            seq,
            seed,
            output,
        } => {
            let netlist = generate(&GenerateConfig {
                num_cells: *cells,
                num_inputs: *inputs,
                num_outputs: *outputs,
                num_seq: *seq,
                seed: *seed,
                ..GenerateConfig::default()
            });
            let text = write_netlist(&netlist);
            if output == "-" {
                write!(out, "{text}")?;
            } else {
                std::fs::write(output, text)?;
                writeln!(
                    out,
                    "wrote {} cells / {} nets to {output}",
                    netlist.num_cells(),
                    netlist.num_nets()
                )?;
            }
            Ok(())
        }
        Command::Layout { input, blif, opts } => {
            let netlist = load_netlist(input, *blif)?;
            let arch = sized_arch(&netlist, opts)?;
            writeln!(
                out,
                "design: {} cells / {} nets on a {}x{} chip, {} tracks/channel",
                netlist.num_cells(),
                netlist.num_nets(),
                arch.geometry().num_rows(),
                arch.geometry().num_cols(),
                arch.tracks_per_channel()
            )?;
            let obs = build_obs(opts)?;
            let result = run_layout(&arch, &netlist, opts, input, &obs, stop)?;
            print_layout_outputs(&arch, &netlist, &result, opts, out)?;
            print_obs_outputs(&obs, opts, out)
        }
        Command::MinTracks {
            input,
            blif,
            start,
            opts,
        } => {
            let netlist = load_netlist(input, *blif)?;
            let base = sized_arch(
                &netlist,
                &CommonOpts {
                    tracks: Some(*start),
                    ..opts.clone()
                },
            )?;
            let mut best = None;
            let mut tracks = *start;
            loop {
                let arch = base
                    .with_tracks(tracks)
                    .map_err(|e| CliError::Parse(e.to_string()))?;
                let result = run_layout(&arch, &netlist, opts, input, &Obs::disabled(), stop)?;
                write!(out, "{}", if result.fully_routed { "." } else { "x" })?;
                out.flush()?;
                if !result.fully_routed || tracks == 1 || stop.is_set() {
                    break;
                }
                best = Some(tracks);
                tracks -= 1;
            }
            writeln!(out)?;
            match best {
                Some(t) => {
                    writeln!(
                        out,
                        "minimum tracks/channel for 100% wirability ({:?}): {t}",
                        opts.flow
                    )?;
                    Ok(())
                }
                None => Err(CliError::Unroutable { start: *start }),
            }
        }
        Command::Bench { name, opts } => {
            let bench = PaperBenchmark::all()
                .into_iter()
                .find(|b| b.name() == name)
                .ok_or_else(|| CliError::UnknownBenchmark(name.clone()))?;
            let netlist = generate(&paper_preset(bench));
            let arch = sized_arch(&netlist, opts)?;
            writeln!(
                out,
                "benchmark {}: {} cells / {} nets",
                bench.name(),
                netlist.num_cells(),
                netlist.num_nets()
            )?;
            let obs = build_obs(opts)?;
            let result = run_layout(&arch, &netlist, opts, bench.name(), &obs, stop)?;
            print_layout_outputs(&arch, &netlist, &result, opts, out)?;
            print_obs_outputs(&obs, opts, out)
        }
        Command::Serve {
            socket,
            spool,
            workers,
            queue,
            checkpoint_every,
            checkpoint_keep,
        } => crate::service::run_serve(
            &crate::service::ServeOpts {
                socket: socket.clone(),
                spool: spool.clone(),
                workers: *workers,
                queue: *queue,
                checkpoint_every: *checkpoint_every,
                checkpoint_keep: *checkpoint_keep,
            },
            out,
            stop,
        ),
        Command::Submit {
            input,
            socket,
            seed,
            priority,
            deadline,
            fast,
            tracks,
            arch,
            journal,
            wait,
            timeout,
        } => crate::service::run_submit(
            socket,
            &crate::service::SubmitOpts {
                input: input.clone(),
                seed: *seed,
                priority: *priority,
                deadline: *deadline,
                fast: *fast,
                tracks: *tracks,
                arch: arch.clone(),
                journal: journal.clone(),
                wait: *wait,
                timeout: *timeout,
            },
            out,
        ),
        Command::Jobs { socket, job } => crate::service::run_jobs(socket, job.as_deref(), out),
        Command::CancelJob { socket, job } => crate::service::run_cancel(socket, job, out),
        Command::Tail {
            source,
            listen,
            follow,
        } => crate::tail::run_tail(source, *listen, *follow, out),
        Command::Analyze {
            journal,
            out_dir,
            quiet,
        } => run_analyze(journal, out_dir, *quiet, out),
        Command::Lint {
            json,
            fix_budget,
            explain,
            root,
        } => {
            if let Some(lint) = explain {
                return match rowfpga_lint::explain(lint) {
                    Some(text) => {
                        writeln!(out, "{lint}: {text}")?;
                        Ok(())
                    }
                    None => Err(CliError::UnknownLint { lint: lint.clone() }),
                };
            }
            let root = std::path::PathBuf::from(root.as_deref().unwrap_or("."));
            let opts = rowfpga_lint::Options {
                fix_budget: *fix_budget,
            };
            let report = rowfpga_lint::run_repo(&root, opts).map_err(CliError::Lint)?;
            if *json {
                write!(out, "{}", report.render_json())?;
            } else {
                write!(out, "{}", report.render_text())?;
            }
            if report.ok() {
                Ok(())
            } else {
                Err(CliError::LintViolations {
                    count: report.violations.len(),
                })
            }
        }
        Command::Fuzz {
            seconds,
            iters,
            seed,
            corpus,
            min_cells,
            max_cells,
            replay,
        } => {
            if let Some(path) = replay {
                let reproduced = rowfpga_verify::replay_repro(std::path::Path::new(path))
                    .map_err(CliError::Parse)?;
                return match reproduced {
                    Some(failure) => {
                        writeln!(out, "reproduced: {failure}")?;
                        Err(CliError::FuzzViolations { count: 1 })
                    }
                    None => {
                        writeln!(out, "{path}: replays cleanly, no violation")?;
                        Ok(())
                    }
                };
            }
            let cfg = rowfpga_verify::FuzzConfig {
                seed: *seed,
                iters: *iters,
                seconds: *seconds,
                corpus: corpus.as_ref().map(std::path::PathBuf::from),
                cells: rowfpga_verify::CaseConfig {
                    min_cells: *min_cells,
                    max_cells: *max_cells,
                },
            };
            let report = rowfpga_verify::run_fuzz(&cfg, |line| {
                let _ = writeln!(out, "{line}");
            });
            writeln!(
                out,
                "fuzz: {} iterations, {} ops replayed, {} violation(s)",
                report.iterations,
                report.ops_replayed,
                report.failures.len()
            )?;
            if report.clean() {
                Ok(())
            } else {
                for f in &report.failures {
                    match &f.repro_path {
                        Some(p) => writeln!(
                            out,
                            "  iter {}: {} -> {}",
                            f.iteration,
                            f.failure,
                            p.display()
                        )?,
                        None => writeln!(out, "  iter {}: {}", f.iteration, f.failure)?,
                    }
                }
                Err(CliError::FuzzViolations {
                    count: report.failures.len(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn run(args: &[&str]) -> Result<String, CliError> {
        let cmd = parse_args(&v(args)).expect("args parse");
        let mut out = Vec::new();
        run_command(&cmd, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&["help"]).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn fuzz_smoke_runs_clean() {
        let out = run(&[
            "fuzz",
            "--iters",
            "1",
            "--seed",
            "3",
            "--min-cells",
            "20",
            "--max-cells",
            "40",
        ])
        .unwrap();
        assert!(out.contains("fuzz: 1 iterations"));
        assert!(out.contains("0 violation(s)"));
    }

    #[test]
    fn fuzz_replay_of_a_missing_file_is_a_parse_error() {
        let err = run(&["fuzz", "--replay", "/nonexistent/x.repro.json"]).unwrap_err();
        assert!(matches!(err, CliError::Parse(_)));
    }

    #[test]
    fn generate_to_stdout_is_parseable() {
        let out = run(&["generate", "--cells", "40", "--seed", "9"]).unwrap();
        let nl = parse_netlist(&out).expect("generated netlist parses");
        assert_eq!(nl.num_cells(), 40);
    }

    #[test]
    fn generate_layout_roundtrip_via_files() {
        let dir = std::env::temp_dir().join("rowfpga_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let net_path = dir.join("d.net");
        let svg_path = dir.join("d.svg");
        run(&[
            "generate",
            "--cells",
            "40",
            "--inputs",
            "4",
            "--outputs",
            "4",
            "--seq",
            "3",
            "-o",
            net_path.to_str().unwrap(),
        ])
        .unwrap();
        let out = run(&[
            "layout",
            net_path.to_str().unwrap(),
            "--fast",
            "--report",
            "--ascii",
            "--svg",
            svg_path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("routed: true"), "{out}");
        assert!(out.contains("critical path:"));
        assert!(out.contains("% wire used"));
        let svg = std::fs::read_to_string(&svg_path).unwrap();
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    fn layout_with_threads_runs_and_is_deterministic() {
        let dir = std::env::temp_dir().join("rowfpga_cli_threads_test");
        std::fs::create_dir_all(&dir).unwrap();
        let net_path = dir.join("d.net");
        run(&[
            "generate",
            "--cells",
            "40",
            "--inputs",
            "4",
            "--outputs",
            "4",
            "--seq",
            "3",
            "-o",
            net_path.to_str().unwrap(),
        ])
        .unwrap();
        let go = || {
            run(&[
                "layout",
                net_path.to_str().unwrap(),
                "--fast",
                "--seed",
                "5",
                "--threads",
                "2",
            ])
            .unwrap()
        };
        // Wall clock varies run to run; everything else must not.
        let stable = |out: String| -> String {
            let cut = out.find(" moves in ").expect("summary line present");
            out[..cut].to_string()
        };
        let a = go();
        assert!(a.contains("routed: true"), "{a}");
        assert_eq!(
            stable(a),
            stable(go()),
            "two-replica layout must be reproducible"
        );
    }

    #[test]
    fn layout_accepts_a_custom_architecture_file() {
        let dir = std::env::temp_dir().join("rowfpga_cli_arch_test");
        std::fs::create_dir_all(&dir).unwrap();
        let net_path = dir.join("d.net");
        let arch_path = dir.join("f.arch");
        run(&[
            "generate",
            "--cells",
            "30",
            "--inputs",
            "4",
            "--outputs",
            "4",
            "--seq",
            "2",
            "--seed",
            "5",
            "-o",
            net_path.to_str().unwrap(),
        ])
        .unwrap();
        std::fs::write(
            &arch_path,
            "rows 4
cols 14
io_columns 1
tracks_per_channel 20
segmentation uniform 4
verticals longlines 4 3
",
        )
        .unwrap();
        let out = run(&[
            "layout",
            net_path.to_str().unwrap(),
            "--fast",
            "--arch",
            arch_path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("4x14 chip, 20 tracks/channel"), "{out}");
        assert!(out.contains("routed: true"), "{out}");
    }

    #[test]
    fn bench_runs_a_preset() {
        let out = run(&["bench", "cse", "--fast", "--flow", "seq"]).unwrap();
        assert!(out.contains("benchmark cse: 156 cells"));
        assert!(out.contains("routed: true"));
    }

    #[test]
    fn journal_and_metrics_flags_produce_artifacts() {
        use rowfpga_obs::{json, Event};

        let dir = std::env::temp_dir().join("rowfpga_cli_obs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let journal_path = dir.join("run.jsonl");
        let out = run(&[
            "bench",
            "s1",
            "--fast",
            "--journal",
            journal_path.to_str().unwrap(),
            "--metrics",
        ])
        .unwrap();
        assert!(out.contains("phase breakdown"), "{out}");
        assert!(out.contains("run journal written to"), "{out}");

        let text = std::fs::read_to_string(&journal_path).unwrap();
        let _ = std::fs::remove_file(&journal_path);
        let docs = json::parse_lines(&text).expect("journal parses as JSONL");
        let events: Vec<Event> = docs.iter().filter_map(Event::from_json).collect();
        assert_eq!(events.len(), docs.len());
        assert!(
            matches!(&events[0], Event::JournalHeader { .. }),
            "journal opens with the schema header"
        );
        assert!(
            matches!(&events[1], Event::RunStart { benchmark, .. } if benchmark == "s1"),
            "run_start follows the header"
        );
        assert!(
            events.iter().any(|e| matches!(e, Event::Temperature(_))),
            "journal has at least one temperature event"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::SpanStart { name, .. } if name == "anneal")),
            "journal carries the causal span tree"
        );
        assert!(
            matches!(events.last(), Some(Event::RunEnd { .. })),
            "journal closes with run_end"
        );
    }

    #[test]
    fn journal_analyze_and_tail_work_end_to_end() {
        use rowfpga_obs::json;

        let dir = std::env::temp_dir().join("rowfpga_cli_analyze_test");
        std::fs::create_dir_all(&dir).unwrap();
        let journal_path = dir.join("run.jsonl");
        run(&[
            "bench",
            "s1",
            "--fast",
            "--journal",
            journal_path.to_str().unwrap(),
        ])
        .unwrap();

        let out = run(&[
            "analyze",
            journal_path.to_str().unwrap(),
            "--out",
            dir.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("per-temperature"), "{out}");
        assert!(out.contains("analysis written to"), "{out}");
        let json_text = std::fs::read_to_string(dir.join("run.analysis.json")).unwrap();
        let doc = json::parse(&json_text).expect("analysis JSON parses");
        assert_eq!(
            doc.get("schema").and_then(json::Json::as_str),
            Some("rowfpga.analyze/v1")
        );
        let folded = std::fs::read_to_string(dir.join("run.folded")).unwrap();
        assert!(folded.contains("main;anneal"), "{folded}");

        let tail_out = run(&["tail", journal_path.to_str().unwrap(), "--no-follow"]).unwrap();
        assert!(tail_out.contains("done (converged)"), "{tail_out}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_flag_works_for_the_sequential_flow() {
        let out = run(&["bench", "s1", "--fast", "--flow", "seq", "--metrics"]).unwrap();
        assert!(out.contains("phase breakdown"), "{out}");
        assert!(out.contains("place.anneal"), "{out}");
        assert!(out.contains("route.batch"), "{out}");
    }

    #[test]
    fn deadline_checkpoint_and_resume_flow_works_end_to_end() {
        let dir = std::env::temp_dir().join("rowfpga_cli_resilience_test");
        std::fs::create_dir_all(&dir).unwrap();
        let net_path = dir.join("d.net");
        let ckpt = dir.join("d.ckpt.json");
        let _ = std::fs::remove_file(&ckpt);
        run(&[
            "generate",
            "--cells",
            "40",
            "--inputs",
            "4",
            "--outputs",
            "4",
            "--seq",
            "3",
            "-o",
            net_path.to_str().unwrap(),
        ])
        .unwrap();

        // A three-temperature budget stops deterministically mid-anneal
        // and leaves a loadable checkpoint behind. (A zero deadline would
        // stop before any temperature completes, which deliberately does
        // NOT checkpoint: the post-warmup state is not restorable.)
        let out = run(&[
            "layout",
            net_path.to_str().unwrap(),
            "--fast",
            "--temp-budget",
            "3",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--checkpoint-every",
            "1",
            "--checkpoint-keep",
            "2",
        ])
        .unwrap();
        assert!(out.contains("stop: deadline"), "{out}");
        assert!(ckpt.exists(), "early stop must write a final checkpoint");
        // Retention: per-temperature snapshots left generation siblings,
        // pruned down to the two newest by `--checkpoint-keep 2`.
        let gens = rowfpga_core::list_generations(&ckpt);
        assert!(
            (1..=2).contains(&gens.len()),
            "expected at most 2 retained generations, found {gens:?}"
        );

        // Resuming that checkpoint runs to convergence.
        let out = run(&[
            "layout",
            net_path.to_str().unwrap(),
            "--fast",
            "--resume",
            ckpt.to_str().unwrap(),
            "--audit-every",
            "2",
        ])
        .unwrap();
        assert!(out.contains("stop: converged"), "{out}");
        assert!(out.contains("routed: true"), "{out}");

        // A checkpoint for one seed refuses to resume another.
        let err = run(&[
            "layout",
            net_path.to_str().unwrap(),
            "--fast",
            "--seed",
            "99",
            "--resume",
            ckpt.to_str().unwrap(),
        ])
        .unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("seed"), "mismatch must name the seed: {msg}");
        let _ = std::fs::remove_file(&ckpt);
    }

    #[test]
    fn unknown_benchmark_is_reported() {
        let err = run(&["bench", "s27", "--fast"]).unwrap_err();
        assert!(matches!(err, CliError::UnknownBenchmark(_)));
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = run(&["layout", "/nonexistent/definitely.net", "--fast"]).unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }
}
