//! The service subcommands: `serve`, `submit`, `jobs`, `cancel`.
//!
//! `serve` hosts the [`rowfpga_serve`] daemon in the foreground and
//! drains it gracefully on SIGTERM/SIGINT (the signal only sets the stop
//! flag; running jobs checkpoint, the queue persists, and the process
//! exits 0). The client commands talk the one-line JSON protocol from
//! DESIGN.md §13 over the daemon's unix socket.

use crate::commands::CliError;
use rowfpga_core::StopFlag;

/// Parsed `rowfpga serve` options.
#[derive(Clone, Debug)]
pub struct ServeOpts {
    /// Unix socket to listen on.
    pub socket: String,
    /// Spool directory.
    pub spool: String,
    /// Worker threads.
    pub workers: usize,
    /// Queue capacity.
    pub queue: usize,
    /// Checkpoint cadence in temperatures.
    pub checkpoint_every: usize,
    /// Retained checkpoint generations per job.
    pub checkpoint_keep: usize,
}

/// Everything `rowfpga submit` needs besides the socket.
#[derive(Clone, Debug)]
pub struct SubmitOpts {
    /// Netlist file to read and embed.
    pub input: String,
    /// Placement seed.
    pub seed: u64,
    /// Scheduling priority.
    pub priority: i64,
    /// Execution budget in seconds.
    pub deadline: Option<f64>,
    /// Low-effort profile.
    pub fast: bool,
    /// Tracks-per-channel override.
    pub tracks: Option<usize>,
    /// Architecture file to read and embed.
    pub arch: Option<String>,
    /// Per-job journal sink spec.
    pub journal: Option<String>,
    /// Block until the job finishes.
    pub wait: bool,
    /// Waiting budget in seconds.
    pub timeout: f64,
}

#[cfg(unix)]
mod unix_impl {
    use super::{CliError, ServeOpts, StopFlag, SubmitOpts};
    use std::io::Write;
    use std::path::{Path, PathBuf};
    use std::time::Duration;

    use rowfpga_obs::Json;
    use rowfpga_serve::{client, ClientError, Daemon, JobSpec, ServeConfig};

    fn service_err(e: ClientError) -> CliError {
        CliError::Service(e.to_string())
    }

    /// Runs the daemon until the stop flag fires (SIGTERM/SIGINT) or a
    /// client requests `shutdown`, then drains and reports the counters.
    pub fn run_serve(
        opts: &ServeOpts,
        out: &mut impl Write,
        stop: &StopFlag,
    ) -> Result<(), CliError> {
        let mut cfg = ServeConfig::new(PathBuf::from(&opts.socket), PathBuf::from(&opts.spool));
        cfg.workers = opts.workers;
        cfg.queue_capacity = opts.queue;
        cfg.checkpoint_every = opts.checkpoint_every;
        cfg.checkpoint_keep = opts.checkpoint_keep;
        let handle = Daemon::start(cfg)?;
        writeln!(
            out,
            "serving on {} (spool {}, {} worker(s), queue {})",
            opts.socket, opts.spool, opts.workers, opts.queue
        )?;
        out.flush()?;
        while !stop.is_set() && !handle.is_closing() {
            std::thread::sleep(Duration::from_millis(50));
        }
        writeln!(out, "draining: checkpointing running jobs...")?;
        out.flush()?;
        handle.initiate_shutdown();
        let stats = handle.join();
        writeln!(
            out,
            "drained: {} submitted, {} completed, {} failed, {} canceled, \
             {} rejected, {} evictions, {} recovered, {} quarantined",
            stats.submitted,
            stats.completed,
            stats.failed,
            stats.canceled,
            stats.rejected,
            stats.evictions,
            stats.recovered,
            stats.quarantined
        )?;
        Ok(())
    }

    pub fn run_submit(
        socket: &str,
        opts: &SubmitOpts,
        out: &mut impl Write,
    ) -> Result<(), CliError> {
        let netlist = std::fs::read_to_string(&opts.input)?;
        let arch = opts
            .arch
            .as_ref()
            .map(std::fs::read_to_string)
            .transpose()?;
        let spec = JobSpec {
            netlist,
            arch,
            tracks: opts.tracks,
            seed: opts.seed,
            fast: opts.fast,
            priority: opts.priority,
            deadline_sec: opts.deadline,
            journal: opts.journal.clone(),
        };
        let socket = Path::new(socket);
        let id = client::submit(socket, &spec).map_err(service_err)?;
        writeln!(out, "submitted {id}")?;
        if opts.wait {
            out.flush()?;
            let done = client::wait(socket, &id, Duration::from_secs_f64(opts.timeout))
                .map_err(service_err)?;
            print_job(&done, out)?;
        }
        Ok(())
    }

    pub fn run_jobs(socket: &str, job: Option<&str>, out: &mut impl Write) -> Result<(), CliError> {
        let socket = Path::new(socket);
        match job {
            Some(id) => {
                let doc = client::status(socket, id).map_err(service_err)?;
                print_job(&doc, out)
            }
            None => {
                let doc = client::request(socket, &Json::obj(vec![("cmd", "list".into())]))
                    .map_err(service_err)?;
                let rows = match doc.get("jobs") {
                    Some(Json::Arr(rows)) => rows.as_slice(),
                    _ => &[],
                };
                for row in rows {
                    let field = |k: &str| row.get(k).and_then(Json::as_str).unwrap_or("?");
                    writeln!(
                        out,
                        "{}  {:<8}  priority {:>4}  {:>7.1}s spent  {} segment(s), {} eviction(s)",
                        field("id"),
                        field("state"),
                        row.get("priority").and_then(Json::as_f64).unwrap_or(0.0),
                        row.get("spent_sec").and_then(Json::as_f64).unwrap_or(0.0),
                        row.get("segments").and_then(Json::as_u64).unwrap_or(0),
                        row.get("evictions").and_then(Json::as_u64).unwrap_or(0),
                    )?;
                }
                writeln!(out, "{} job(s)", rows.len())?;
                Ok(())
            }
        }
    }

    pub fn run_cancel(socket: &str, job: &str, out: &mut impl Write) -> Result<(), CliError> {
        let doc = client::request(
            Path::new(socket),
            &Json::obj(vec![("cmd", "cancel".into()), ("job", job.into())]),
        )
        .map_err(service_err)?;
        let state = doc.get("state").and_then(Json::as_str).unwrap_or("?");
        writeln!(out, "{job}: {state}")?;
        Ok(())
    }

    /// Renders one job's `status` document: the lifecycle line, then the
    /// result summary when one exists.
    fn print_job(doc: &Json, out: &mut impl Write) -> Result<(), CliError> {
        let null = Json::Null;
        let job = doc.get("job").unwrap_or(&null);
        let field = |k: &str| job.get(k).and_then(Json::as_str).unwrap_or("?");
        let mut line = format!(
            "{}  {:<8}  {:.1}s spent, {} segment(s), {} eviction(s)",
            field("id"),
            field("state"),
            job.get("spent_sec").and_then(Json::as_f64).unwrap_or(0.0),
            job.get("segments").and_then(Json::as_u64).unwrap_or(0),
            job.get("evictions").and_then(Json::as_u64).unwrap_or(0),
        );
        if let Some(reason) = job.get("stop_reason").and_then(Json::as_str) {
            line.push_str(&format!("  stop: {reason}"));
        }
        if let Some(err) = job.get("error").and_then(Json::as_str) {
            line.push_str(&format!("  error: {err}"));
        }
        writeln!(out, "{line}")?;
        if let Some(result) = doc.get("result") {
            if !matches!(result, Json::Null) {
                writeln!(
                    out,
                    "result: routed {} (G={}, D={}), worst path {:.2} ns, \
                     {} temperature(s), digest {}",
                    result
                        .get("fully_routed")
                        .and_then(Json::as_bool)
                        .unwrap_or(false),
                    result
                        .get("globally_unrouted")
                        .and_then(Json::as_u64)
                        .unwrap_or(0),
                    result.get("incomplete").and_then(Json::as_u64).unwrap_or(0),
                    result
                        .get("worst_delay")
                        .and_then(Json::as_f64)
                        .unwrap_or(0.0)
                        / 1000.0,
                    result
                        .get("temperatures")
                        .and_then(Json::as_u64)
                        .unwrap_or(0),
                    result.get("digest").and_then(Json::as_str).unwrap_or("?"),
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(unix)]
pub use unix_impl::{run_cancel, run_jobs, run_serve, run_submit};

#[cfg(not(unix))]
mod portable_stub {
    use super::{CliError, ServeOpts, StopFlag, SubmitOpts};
    use std::io::Write;

    fn unsupported() -> CliError {
        CliError::Service("the service commands need unix domain sockets".into())
    }

    pub fn run_serve(
        _opts: &ServeOpts,
        _out: &mut impl Write,
        _stop: &StopFlag,
    ) -> Result<(), CliError> {
        Err(unsupported())
    }

    pub fn run_submit(
        _socket: &str,
        _opts: &SubmitOpts,
        _out: &mut impl Write,
    ) -> Result<(), CliError> {
        Err(unsupported())
    }

    pub fn run_jobs(
        _socket: &str,
        _job: Option<&str>,
        _out: &mut impl Write,
    ) -> Result<(), CliError> {
        Err(unsupported())
    }

    pub fn run_cancel(_socket: &str, _job: &str, _out: &mut impl Write) -> Result<(), CliError> {
        Err(unsupported())
    }
}

#[cfg(not(unix))]
pub use portable_stub::{run_cancel, run_jobs, run_serve, run_submit};
