//! The traditional sequential place-then-route flow for row-based FPGAs.
//!
//! This is a reconstruction of the comparison system of the paper's §4 — a
//! production flow in the TimberWolfSC tradition \[6\]:
//!
//! 1. **Placement** by simulated annealing over estimated half-perimeter
//!    wirelength plus channel-congestion overflow, with nets on deep
//!    (statically critical) paths weighted heavier — exactly the kind of
//!    placement-level prediction the paper argues is "especially prone to
//!    error" for segmented fabrics, because the rigid routing resources and
//!    their fine-grain connectivity constraints are invisible at this
//!    level (§2.1);
//! 2. **Global routing** of the frozen placement (feedthrough assignment,
//!    after Rao \[7\]);
//! 3. **Detailed routing** of every channel (segmented track assignment,
//!    after Roy \[11\]) with rip-up-and-retry rounds.
//!
//! Both flows share the same routers, the same timing analyzer and the same
//! [`rowfpga_core::LayoutResult`] type, so comparisons isolate the single variable the
//! paper studies: whether routing runs *inside* the placement loop or
//! *after* it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod criticality;
mod placer;
mod sequential;

pub use criticality::net_criticalities;
pub use placer::{PlacerConfig, PlacerProblem};
pub use sequential::{SeqPrConfig, SequentialPlaceRoute};
