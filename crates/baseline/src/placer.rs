//! The annealing placer of the sequential flow.
//!
//! Cost = Σ_nets weight(net) · HPWL(net) + β · congestion-overflow², with
//! net weights raised for statically critical nets. All routing resources
//! (segmentation, antifuse granularity) are invisible at this level; that
//! blindness is the phenomenon the paper's experiments quantify.

use rand::rngs::StdRng;

use rowfpga_anneal::AnnealProblem;
use rowfpga_arch::Architecture;
use rowfpga_netlist::{NetId, Netlist};
use rowfpga_place::{CongestionMap, Move, MoveGenerator, MoveWeights, NetBbox, Placement};

use rowfpga_core::LayoutError;

/// Placer tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlacerConfig {
    /// Weight of the channel-congestion overflow term.
    pub congestion_weight: f64,
    /// How strongly static criticality inflates a net's weight:
    /// `weight = 1 + timing_factor · criticality²`.
    pub timing_factor: f64,
    /// Extra cost per channel crossed by a net (vertical hops demand
    /// feedthroughs and cross antifuses).
    pub vertical_weight: f64,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        Self {
            congestion_weight: 0.02,
            timing_factor: 2.0,
            vertical_weight: 2.0,
        }
    }
}

/// Record of an applied placer move.
#[derive(Debug)]
pub struct AppliedPlacerMove {
    mv: Move,
    saved: Vec<(NetId, NetBbox)>,
}

/// The wirelength/congestion placement problem of the sequential flow.
#[derive(Debug)]
pub struct PlacerProblem<'a> {
    arch: &'a Architecture,
    netlist: &'a Netlist,
    placement: Placement,
    mover: MoveGenerator,
    config: PlacerConfig,
    net_weights: Vec<f64>,
    bboxes: Vec<NetBbox>,
    congestion: CongestionMap,
    /// Current exchange-window half-width (shrinks as acceptance falls).
    window: usize,
}

impl<'a> PlacerProblem<'a> {
    /// Creates the problem from a random initial placement.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] if the design does not fit the chip or has a
    /// combinational loop (criticality weighting needs levelization).
    pub fn new(
        arch: &'a Architecture,
        netlist: &'a Netlist,
        config: PlacerConfig,
        move_weights: MoveWeights,
        seed: u64,
    ) -> Result<PlacerProblem<'a>, LayoutError> {
        let placement = Placement::random(arch, netlist, seed).map_err(LayoutError::Placement)?;
        let crits =
            crate::criticality::net_criticalities(netlist).map_err(LayoutError::CombLoop)?;
        let net_weights: Vec<f64> = crits
            .iter()
            .map(|c| 1.0 + config.timing_factor * c * c)
            .collect();
        let bboxes: Vec<NetBbox> = netlist
            .nets()
            .map(|(id, _)| NetBbox::compute(arch, netlist, &placement, id))
            .collect();
        let mut congestion = CongestionMap::new(arch);
        for b in &bboxes {
            congestion.add_net(b);
        }
        Ok(PlacerProblem {
            arch,
            netlist,
            mover: MoveGenerator::new(arch, netlist, move_weights),
            placement,
            config,
            net_weights,
            bboxes,
            congestion,
            window: usize::MAX,
        })
    }

    /// The current placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Consumes the problem, returning the final placement.
    pub fn into_placement(self) -> Placement {
        self.placement
    }

    fn wire_cost(&self) -> f64 {
        self.bboxes
            .iter()
            .zip(&self.net_weights)
            .map(|(b, w)| w * b.hpwl(self.config.vertical_weight))
            .sum()
    }

    fn nets_of_move(&self, mv: &Move) -> Vec<NetId> {
        let mut nets: Vec<NetId> = mv
            .affected_cells(&self.placement)
            .into_iter()
            .flat_map(|c| self.netlist.nets_of_cell(c))
            .collect();
        nets.sort_unstable();
        nets.dedup();
        nets
    }
}

impl AnnealProblem for PlacerProblem<'_> {
    type Applied = AppliedPlacerMove;

    fn propose_and_apply(&mut self, rng: &mut StdRng) -> (AppliedPlacerMove, f64) {
        let window = (self.window < self.mover.max_window()).then_some(self.window);
        let mv = self
            .mover
            .propose_in_window(self.netlist, &self.placement, rng, window);
        let nets = self.nets_of_move(&mv);

        let mut delta = 0.0;
        let cong_before = self.congestion.cost();
        mv.apply(self.arch, self.netlist, &mut self.placement);
        let mut saved = Vec::with_capacity(nets.len());
        for net in nets {
            let old = self.bboxes[net.index()];
            let new = NetBbox::compute(self.arch, self.netlist, &self.placement, net);
            let w = self.net_weights[net.index()];
            delta +=
                w * (new.hpwl(self.config.vertical_weight) - old.hpwl(self.config.vertical_weight));
            self.congestion.remove_net(&old);
            self.congestion.add_net(&new);
            self.bboxes[net.index()] = new;
            saved.push((net, old));
        }
        delta += self.config.congestion_weight * (self.congestion.cost() - cong_before);
        (AppliedPlacerMove { mv, saved }, delta)
    }

    fn undo(&mut self, applied: AppliedPlacerMove) {
        applied
            .mv
            .undo(self.arch, self.netlist, &mut self.placement);
        for (net, old) in applied.saved {
            let new = self.bboxes[net.index()];
            self.congestion.remove_net(&new);
            self.congestion.add_net(&old);
            self.bboxes[net.index()] = old;
        }
    }

    fn commit(&mut self, _applied: AppliedPlacerMove) {}

    fn cost(&self) -> f64 {
        self.wire_cost() + self.config.congestion_weight * self.congestion.cost()
    }

    fn on_temperature(&mut self, stats: &rowfpga_anneal::TemperatureStats) {
        if stats.acceptance_ratio() < 0.44 {
            let current = self.window.min(self.mover.max_window());
            self.window = ((current as f64 * 0.85) as usize).max(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rowfpga_anneal::{anneal, AnnealConfig};
    use rowfpga_netlist::{generate, GenerateConfig};

    fn fixture() -> (Architecture, Netlist) {
        let nl = generate(&GenerateConfig {
            num_cells: 40,
            num_inputs: 5,
            num_outputs: 5,
            num_seq: 3,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(5)
            .cols(12)
            .io_columns(2)
            .tracks_per_channel(14)
            .build()
            .unwrap();
        (arch, nl)
    }

    #[test]
    fn incremental_cost_matches_recomputation() {
        let (arch, nl) = fixture();
        let mut p = PlacerProblem::new(
            &arch,
            &nl,
            PlacerConfig::default(),
            MoveWeights::default(),
            3,
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut cost = p.cost();
        for i in 0..300 {
            let (applied, delta) = p.propose_and_apply(&mut rng);
            if i % 2 == 0 {
                p.commit(applied);
                cost += delta;
            } else {
                p.undo(applied);
            }
            assert!(
                (p.cost() - cost).abs() < 1e-6 * cost.abs().max(1.0),
                "drift at move {i}: tracked {cost} vs actual {}",
                p.cost()
            );
        }
    }

    #[test]
    fn undo_restores_placement_and_cost() {
        let (arch, nl) = fixture();
        let mut p = PlacerProblem::new(
            &arch,
            &nl,
            PlacerConfig::default(),
            MoveWeights::default(),
            3,
        )
        .unwrap();
        let cost0 = p.cost();
        let sites: Vec<_> = nl
            .cells()
            .map(|(id, _)| p.placement().site_of(id))
            .collect();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let (applied, _) = p.propose_and_apply(&mut rng);
            p.undo(applied);
        }
        assert!((p.cost() - cost0).abs() < 1e-9);
        for (i, (id, _)) in nl.cells().enumerate() {
            assert_eq!(p.placement().site_of(id), sites[i]);
        }
    }

    #[test]
    fn annealing_reduces_wirelength() {
        let (arch, nl) = fixture();
        let mut p = PlacerProblem::new(
            &arch,
            &nl,
            PlacerConfig::default(),
            MoveWeights::default(),
            3,
        )
        .unwrap();
        let initial = p.cost();
        let out = anneal(&mut p, &AnnealConfig::fast(), |_| {});
        assert!(
            out.final_cost < initial * 0.9,
            "annealing left cost at {} (from {initial})",
            out.final_cost
        );
        assert!(p.placement().check_invariants(&arch, &nl));
    }
}
