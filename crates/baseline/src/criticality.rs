//! Static (pre-layout) net criticality.
//!
//! The sequential flow prioritizes nets by unit-delay path depth: the
//! longest boundary-to-boundary path through a net, normalized by the
//! design's depth. This is the "initial critical path / net estimates to
//! prioritize the nets" approach the paper describes traditional placers
//! using (§2.1) — and whose blind spots (interconnect-dominated paths that
//! only *become* critical after layout) motivate the simultaneous
//! formulation.

use rowfpga_netlist::{CellId, CombLoopError, Levels, Netlist};

/// Computes a criticality in `[0, 1]` for every net: the length of the
/// longest unit-delay path through the net, divided by the design depth.
///
/// # Errors
///
/// Returns [`CombLoopError`] if the netlist has a combinational loop.
pub fn net_criticalities(netlist: &Netlist) -> Result<Vec<f64>, CombLoopError> {
    let levels = Levels::compute(netlist)?;

    // Backward depth: longest unit-delay suffix from a cell's output to an
    // endpoint, over comb cells only (boundaries terminate).
    let mut bdepth = vec![0u32; netlist.num_cells()];
    for &cell in levels.order().iter().rev() {
        let mut best = 0u32;
        if let Some(net) = netlist.driven_net(cell) {
            for s in netlist.net(net).sinks() {
                let k = netlist.cell(s.cell).kind();
                let via = if k.is_boundary() {
                    0
                } else {
                    bdepth[s.cell.index()] + 1
                };
                best = best.max(via);
            }
        }
        bdepth[cell.index()] = best;
    }

    let depth = |c: CellId| levels.level(c);
    let max_depth = levels.max_level().max(1) as f64;
    let crits = netlist
        .nets()
        .map(|(_, net)| {
            let d = net.driver().cell;
            let fwd = depth(d);
            let back = net
                .sinks()
                .iter()
                .map(|s| {
                    let k = netlist.cell(s.cell).kind();
                    if k.is_boundary() {
                        0
                    } else {
                        bdepth[s.cell.index()] + 1
                    }
                })
                .max()
                .unwrap_or(0);
            ((fwd + back) as f64 / max_depth).min(1.0)
        })
        .collect();
    Ok(crits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowfpga_netlist::CellKind;

    #[test]
    fn chain_nets_grow_more_critical_toward_nothing_in_particular() {
        // a -> g0 -> g1 -> g2 -> q : every net lies on the single longest
        // path, so all are fully critical.
        let mut b = Netlist::builder();
        let a = b.add_cell("a", CellKind::Input);
        let mut prev = a;
        for i in 0..3 {
            let g = b.add_cell(format!("g{i}"), CellKind::comb(1));
            b.connect(format!("n{i}"), prev, [(g, 1)]).unwrap();
            prev = g;
        }
        let q = b.add_cell("q", CellKind::Output);
        b.connect("nq", prev, [(q, 0)]).unwrap();
        let nl = b.build().unwrap();
        for c in net_criticalities(&nl).unwrap() {
            assert!((c - 1.0).abs() < 1e-9, "chain net criticality {c}");
        }
    }

    #[test]
    fn side_branches_are_less_critical() {
        // a -> g0 -> g1 -> g2 -> q (deep) and a -> s -> q2 (shallow).
        let mut b = Netlist::builder();
        let a = b.add_cell("a", CellKind::Input);
        let mut prev = a;
        for i in 0..3 {
            let g = b.add_cell(format!("g{i}"), CellKind::comb(1));
            b.connect(format!("n{i}"), prev, [(g, 1)]).unwrap();
            prev = g;
        }
        let q = b.add_cell("q", CellKind::Output);
        b.connect("nq", prev, [(q, 0)]).unwrap();
        let a2 = b.add_cell("a2", CellKind::Input);
        let s = b.add_cell("s", CellKind::comb(1));
        let q2 = b.add_cell("q2", CellKind::Output);
        b.connect("ns", a2, [(s, 1)]).unwrap();
        b.connect("nq2", s, [(q2, 0)]).unwrap();
        let nl = b.build().unwrap();
        let crits = net_criticalities(&nl).unwrap();
        let deep = crits[nl.net_by_name("n1").unwrap().index()];
        let shallow = crits[nl.net_by_name("ns").unwrap().index()];
        assert!(deep > shallow, "deep {deep} vs shallow {shallow}");
        assert!(shallow > 0.0);
    }

    #[test]
    fn criticalities_are_bounded() {
        let nl = rowfpga_netlist::generate(&rowfpga_netlist::GenerateConfig::default());
        for c in net_criticalities(&nl).unwrap() {
            assert!((0.0..=1.0).contains(&c));
        }
    }
}
