//! The complete sequential flow driver: place, then globally route, then
//! detail route, then analyze.

use std::time::Instant;

use rowfpga_anneal::{anneal_obs, AnnealConfig};
use rowfpga_arch::Architecture;
use rowfpga_netlist::Netlist;
use rowfpga_obs::{Event, Json, Obs, RerouteRecord};
use rowfpga_place::MoveWeights;
use rowfpga_route::{route_batch, RouterConfig, RoutingState};
use rowfpga_timing::Sta;

use rowfpga_core::{DynamicsTrace, LayoutError, LayoutResult, StopReason};

use crate::placer::{PlacerConfig, PlacerProblem};

/// Configuration of the sequential flow.
#[derive(Clone, Debug, PartialEq)]
pub struct SeqPrConfig {
    /// Placer cost knobs.
    pub placer: PlacerConfig,
    /// Annealing schedule of the placer. `moves_per_temp` of 0 selects the
    /// automatic `n^(4/3)` budget.
    pub anneal: AnnealConfig,
    /// Router weights (shared with the simultaneous flow for fairness).
    pub router: RouterConfig,
    /// Move class mix of the placer.
    pub move_weights: MoveWeights,
    /// Seed of the initial random placement.
    pub placement_seed: u64,
    /// Rip-up-and-retry rounds of the batch router.
    pub route_passes: usize,
}

impl Default for SeqPrConfig {
    fn default() -> Self {
        Self {
            placer: PlacerConfig::default(),
            anneal: AnnealConfig {
                moves_per_temp: 0,
                ..AnnealConfig::default()
            },
            router: RouterConfig::default(),
            move_weights: MoveWeights::default(),
            placement_seed: 1,
            route_passes: 8,
        }
    }
}

impl SeqPrConfig {
    /// A low-effort profile for tests and smoke runs.
    pub fn fast() -> Self {
        Self {
            anneal: AnnealConfig {
                moves_per_temp: 0,
                max_temps: 40,
                ..AnnealConfig::fast()
            },
            ..Self::default()
        }
    }

    /// Sets the seeds (placement and annealing) together.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.placement_seed = seed;
        self.anneal.seed = seed.wrapping_add(0x9e37);
        self
    }
}

/// The traditional place-then-route flow (the paper's TI comparison
/// system, reconstructed).
#[derive(Clone, Debug)]
pub struct SequentialPlaceRoute {
    config: SeqPrConfig,
}

impl SequentialPlaceRoute {
    /// Creates a driver with the given configuration.
    pub fn new(config: SeqPrConfig) -> SequentialPlaceRoute {
        SequentialPlaceRoute { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SeqPrConfig {
        &self.config
    }

    /// Lays out `netlist` on `arch`: annealing placement on estimated
    /// wirelength and congestion, then batch global and detailed routing of
    /// the frozen placement, then timing analysis.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] if the design does not fit the chip or has a
    /// combinational loop.
    pub fn run(&self, arch: &Architecture, netlist: &Netlist) -> Result<LayoutResult, LayoutError> {
        self.run_observed(arch, netlist, "design", &Obs::disabled())
    }

    /// [`run`](Self::run) with an observability handle: the journal sees a
    /// `run_start` header, one event per placer temperature, a `reroute`
    /// event for the batch routing of the frozen placement, and a `run_end`
    /// footer; the batch-route and STA phases are span-timed.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] if the design does not fit the chip or has a
    /// combinational loop.
    pub fn run_observed(
        &self,
        arch: &Architecture,
        netlist: &Netlist,
        label: &str,
        obs: &Obs,
    ) -> Result<LayoutResult, LayoutError> {
        // rowfpga-lint: allow(determinism) reason=wall-clock is run telemetry only and never steers the search
        let start = Instant::now();
        obs.emit(Event::RunStart {
            flow: "sequential".into(),
            benchmark: label.into(),
            seed: self.config.placement_seed,
            config: vec![
                ("cells".into(), Json::Num(netlist.num_cells() as f64)),
                ("nets".into(), Json::Num(netlist.num_nets() as f64)),
                (
                    "placement_seed".into(),
                    Json::Num(self.config.placement_seed as f64),
                ),
                (
                    "anneal_seed".into(),
                    Json::Num(self.config.anneal.seed as f64),
                ),
                (
                    "route_passes".into(),
                    Json::Num(self.config.route_passes as f64),
                ),
            ],
        });
        let mut problem = PlacerProblem::new(
            arch,
            netlist,
            self.config.placer,
            self.config.move_weights,
            self.config.placement_seed,
        )?;
        let mut anneal_cfg = self.config.anneal.clone();
        if anneal_cfg.moves_per_temp == 0 {
            anneal_cfg.moves_per_temp = AnnealConfig::moves_for_cells(netlist.num_cells(), 1.0);
        }
        obs.span_start("place.anneal");
        let outcome = anneal_obs(&mut problem, &anneal_cfg, |_| {}, obs);
        obs.span_end("place.anneal");
        let placement = problem.into_placement();

        let mut routing = RoutingState::new(arch, netlist);
        let batch = obs.span("route.batch", || {
            route_batch(
                &mut routing,
                arch,
                netlist,
                &placement,
                &self.config.router,
                self.config.route_passes,
            )
        });
        obs.add("route.detail_failures", batch.detail_failures as u64);
        obs.emit(Event::Reroute {
            scope: "batch".into(),
            stats: RerouteRecord {
                globally_routed: batch.globally_routed,
                detail_routed: batch.detail_routed,
                detail_failures: batch.detail_failures,
            },
        });

        let sta = obs.span("final_sta", || {
            Sta::analyze(arch, netlist, &placement, &routing)
        });
        let sta = sta.map_err(LayoutError::CombLoop)?;
        let critical_path = sta.critical_path(netlist);
        let result = LayoutResult {
            fully_routed: routing.is_fully_routed(),
            globally_unrouted: routing.globally_unrouted(),
            incomplete: routing.incomplete(),
            worst_delay: sta.worst_delay(),
            critical_path,
            dynamics: DynamicsTrace::new(),
            temperatures: outcome.temperatures,
            total_moves: outcome.total_moves,
            runtime: start.elapsed(),
            stop_reason: StopReason::Converged,
            repairs: 0,
            placement,
            routing,
        };
        obs.emit(Event::RunEnd {
            cost: outcome.best_cost,
            worst_delay: result.worst_delay,
            unrouted: result.incomplete,
            total_moves: result.total_moves,
            temperatures: result.temperatures,
            runtime_sec: result.runtime.as_secs_f64(),
            metrics: obs
                .with_session(|s| s.metrics.to_json())
                .unwrap_or(Json::Null),
        });
        obs.flush();
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowfpga_netlist::{generate, GenerateConfig};
    use rowfpga_place::Placement;
    use rowfpga_route::verify_routing;

    fn fixture() -> (Architecture, Netlist) {
        let nl = generate(&GenerateConfig {
            num_cells: 40,
            num_inputs: 5,
            num_outputs: 5,
            num_seq: 3,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(5)
            .cols(12)
            .io_columns(2)
            .tracks_per_channel(16)
            .build()
            .unwrap();
        (arch, nl)
    }

    #[test]
    fn sequential_flow_routes_a_small_design() {
        let (arch, nl) = fixture();
        let result = SequentialPlaceRoute::new(SeqPrConfig::fast())
            .run(&arch, &nl)
            .unwrap();
        assert!(result.fully_routed, "left {} incomplete", result.incomplete);
        assert!(result.worst_delay > 0.0);
        verify_routing(&result.routing, &arch, &nl, &result.placement).unwrap();
        assert!(
            result.dynamics.is_empty(),
            "sequential flow has no dynamics"
        );
    }

    #[test]
    fn placement_improves_over_random_on_wirelength() {
        let (arch, nl) = fixture();
        let random = Placement::random(&arch, &nl, 1).unwrap();
        let total_random: f64 = nl
            .nets()
            .map(|(id, _)| rowfpga_place::hpwl(&arch, &nl, &random, id))
            .sum();
        let result = SequentialPlaceRoute::new(SeqPrConfig::fast())
            .run(&arch, &nl)
            .unwrap();
        let total_placed: f64 = nl
            .nets()
            .map(|(id, _)| rowfpga_place::hpwl(&arch, &nl, &result.placement, id))
            .sum();
        assert!(
            total_placed < total_random,
            "placed {total_placed} vs random {total_random}"
        );
    }

    #[test]
    fn observed_sequential_run_journals_the_batch_route() {
        use rowfpga_obs::{Event, Recorder};
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Default)]
        struct Capture(Rc<RefCell<Vec<&'static str>>>);
        impl Recorder for Capture {
            fn record(&mut self, event: &Event) {
                self.0.borrow_mut().push(match event {
                    Event::JournalHeader { .. } => "journal_header",
                    Event::RunStart { .. } => "run_start",
                    Event::Temperature(_) => "temperature",
                    Event::Dynamics(_) => "dynamics",
                    Event::Reroute { .. } => "reroute",
                    Event::RunEnd { .. } => "run_end",
                    _ => "other",
                });
            }
        }

        let (arch, nl) = fixture();
        let kinds = Rc::new(RefCell::new(Vec::new()));
        let obs = Obs::with_sink(Box::new(Capture(kinds.clone())));
        let observed = SequentialPlaceRoute::new(SeqPrConfig::fast())
            .run_observed(&arch, &nl, "fixture", &obs)
            .unwrap();
        let kinds = kinds.borrow();
        assert_eq!(kinds.first(), Some(&"journal_header"));
        assert_eq!(kinds.get(1), Some(&"run_start"));
        assert_eq!(kinds.last(), Some(&"run_end"));
        assert!(kinds.contains(&"temperature"));
        assert!(kinds.contains(&"reroute"));
        assert!(!kinds.contains(&"dynamics"), "no per-move routing dynamics");

        // Observation must not perturb the layout.
        let plain = SequentialPlaceRoute::new(SeqPrConfig::fast())
            .run(&arch, &nl)
            .unwrap();
        assert_eq!(plain.worst_delay, observed.worst_delay);
        assert_eq!(plain.total_moves, observed.total_moves);
    }

    #[test]
    fn runs_are_deterministic_in_seed() {
        let (arch, nl) = fixture();
        let run = |seed| {
            SequentialPlaceRoute::new(SeqPrConfig::fast().with_seed(seed))
                .run(&arch, &nl)
                .unwrap()
        };
        let a = run(4);
        let b = run(4);
        assert_eq!(a.worst_delay, b.worst_delay);
        for (id, _) in nl.cells() {
            assert_eq!(a.placement.site_of(id), b.placement.site_of(id));
        }
    }
}
