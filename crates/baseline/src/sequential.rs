//! The complete sequential flow driver: place, then globally route, then
//! detail route, then analyze.

use std::time::Instant;

use rowfpga_anneal::{anneal, AnnealConfig};
use rowfpga_arch::Architecture;
use rowfpga_netlist::Netlist;
use rowfpga_place::MoveWeights;
use rowfpga_route::{route_batch, RouterConfig, RoutingState};
use rowfpga_timing::Sta;

use rowfpga_core::{DynamicsTrace, LayoutError, LayoutResult};

use crate::placer::{PlacerConfig, PlacerProblem};

/// Configuration of the sequential flow.
#[derive(Clone, Debug, PartialEq)]
pub struct SeqPrConfig {
    /// Placer cost knobs.
    pub placer: PlacerConfig,
    /// Annealing schedule of the placer. `moves_per_temp` of 0 selects the
    /// automatic `n^(4/3)` budget.
    pub anneal: AnnealConfig,
    /// Router weights (shared with the simultaneous flow for fairness).
    pub router: RouterConfig,
    /// Move class mix of the placer.
    pub move_weights: MoveWeights,
    /// Seed of the initial random placement.
    pub placement_seed: u64,
    /// Rip-up-and-retry rounds of the batch router.
    pub route_passes: usize,
}

impl Default for SeqPrConfig {
    fn default() -> Self {
        Self {
            placer: PlacerConfig::default(),
            anneal: AnnealConfig {
                moves_per_temp: 0,
                ..AnnealConfig::default()
            },
            router: RouterConfig::default(),
            move_weights: MoveWeights::default(),
            placement_seed: 1,
            route_passes: 8,
        }
    }
}

impl SeqPrConfig {
    /// A low-effort profile for tests and smoke runs.
    pub fn fast() -> Self {
        Self {
            anneal: AnnealConfig {
                moves_per_temp: 0,
                max_temps: 40,
                ..AnnealConfig::fast()
            },
            ..Self::default()
        }
    }

    /// Sets the seeds (placement and annealing) together.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.placement_seed = seed;
        self.anneal.seed = seed.wrapping_add(0x9e37);
        self
    }
}

/// The traditional place-then-route flow (the paper's TI comparison
/// system, reconstructed).
#[derive(Clone, Debug)]
pub struct SequentialPlaceRoute {
    config: SeqPrConfig,
}

impl SequentialPlaceRoute {
    /// Creates a driver with the given configuration.
    pub fn new(config: SeqPrConfig) -> SequentialPlaceRoute {
        SequentialPlaceRoute { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SeqPrConfig {
        &self.config
    }

    /// Lays out `netlist` on `arch`: annealing placement on estimated
    /// wirelength and congestion, then batch global and detailed routing of
    /// the frozen placement, then timing analysis.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] if the design does not fit the chip or has a
    /// combinational loop.
    pub fn run(
        &self,
        arch: &Architecture,
        netlist: &Netlist,
    ) -> Result<LayoutResult, LayoutError> {
        let start = Instant::now();
        let mut problem = PlacerProblem::new(
            arch,
            netlist,
            self.config.placer,
            self.config.move_weights,
            self.config.placement_seed,
        )?;
        let mut anneal_cfg = self.config.anneal.clone();
        if anneal_cfg.moves_per_temp == 0 {
            anneal_cfg.moves_per_temp = AnnealConfig::moves_for_cells(netlist.num_cells(), 1.0);
        }
        let outcome = anneal(&mut problem, &anneal_cfg, |_| {});
        let placement = problem.into_placement();

        let mut routing = RoutingState::new(arch, netlist);
        route_batch(
            &mut routing,
            arch,
            netlist,
            &placement,
            &self.config.router,
            self.config.route_passes,
        );

        let sta = Sta::analyze(arch, netlist, &placement, &routing)
            .map_err(LayoutError::CombLoop)?;
        let critical_path = sta.critical_path(netlist);
        Ok(LayoutResult {
            fully_routed: routing.is_fully_routed(),
            globally_unrouted: routing.globally_unrouted(),
            incomplete: routing.incomplete(),
            worst_delay: sta.worst_delay(),
            critical_path,
            dynamics: DynamicsTrace::new(),
            temperatures: outcome.temperatures,
            total_moves: outcome.total_moves,
            runtime: start.elapsed(),
            placement,
            routing,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowfpga_netlist::{generate, GenerateConfig};
    use rowfpga_place::Placement;
    use rowfpga_route::verify_routing;

    fn fixture() -> (Architecture, Netlist) {
        let nl = generate(&GenerateConfig {
            num_cells: 40,
            num_inputs: 5,
            num_outputs: 5,
            num_seq: 3,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(5)
            .cols(12)
            .io_columns(2)
            .tracks_per_channel(16)
            .build()
            .unwrap();
        (arch, nl)
    }

    #[test]
    fn sequential_flow_routes_a_small_design() {
        let (arch, nl) = fixture();
        let result = SequentialPlaceRoute::new(SeqPrConfig::fast())
            .run(&arch, &nl)
            .unwrap();
        assert!(result.fully_routed, "left {} incomplete", result.incomplete);
        assert!(result.worst_delay > 0.0);
        verify_routing(&result.routing, &arch, &nl, &result.placement).unwrap();
        assert!(result.dynamics.is_empty(), "sequential flow has no dynamics");
    }

    #[test]
    fn placement_improves_over_random_on_wirelength() {
        let (arch, nl) = fixture();
        let random = Placement::random(&arch, &nl, 1).unwrap();
        let total_random: f64 = nl
            .nets()
            .map(|(id, _)| rowfpga_place::hpwl(&arch, &nl, &random, id))
            .sum();
        let result = SequentialPlaceRoute::new(SeqPrConfig::fast())
            .run(&arch, &nl)
            .unwrap();
        let total_placed: f64 = nl
            .nets()
            .map(|(id, _)| rowfpga_place::hpwl(&arch, &nl, &result.placement, id))
            .sum();
        assert!(
            total_placed < total_random,
            "placed {total_placed} vs random {total_random}"
        );
    }

    #[test]
    fn runs_are_deterministic_in_seed() {
        let (arch, nl) = fixture();
        let run = |seed| {
            SequentialPlaceRoute::new(SeqPrConfig::fast().with_seed(seed))
                .run(&arch, &nl)
                .unwrap()
        };
        let a = run(4);
        let b = run(4);
        assert_eq!(a.worst_delay, b.worst_delay);
        for (id, _) in nl.cells() {
            assert_eq!(a.placement.site_of(id), b.placement.site_of(id));
        }
    }
}
