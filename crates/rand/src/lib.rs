//! Offline stand-in for the subset of the crates.io `rand` API used by this
//! workspace.
//!
//! The build environment has no network access and no vendored registry, so
//! the real `rand` crate cannot be fetched. This crate provides the same
//! import paths (`rand::rngs::StdRng`, `rand::Rng`, `rand::SeedableRng`,
//! `rand::seq::SliceRandom`) backed by a xoshiro256++ generator seeded via
//! SplitMix64. Streams are deterministic in the seed (the property every
//! test in the workspace relies on) but are *not* bit-compatible with the
//! upstream ChaCha12-based `StdRng`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, n)` without modulo bias (Lemire's method).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_impls!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling interface, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its full-domain distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), state-expanded from the seed with SplitMix64. Fast, passes
    /// BigCrush, and deterministic in the seed.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl StdRng {
        /// Returns the raw xoshiro256++ state words, for checkpointing.
        /// Feeding them back through [`StdRng::from_state`] resumes the
        /// stream at exactly this point.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from state words captured with
        /// [`StdRng::state`]. An all-zero state is a fixed point of
        /// xoshiro256++ and is rejected by reseeding from 0 instead.
        pub fn from_state(s: [u64; 4]) -> StdRng {
            if s == [0; 4] {
                return <StdRng as SeedableRng>::seed_from_u64(0);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(123);
        for _ in 0..37 {
            let _ = a.gen::<u64>();
        }
        let snap = a.state();
        let tail: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let mut b = StdRng::from_state(snap);
        let resumed: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        assert_eq!(tail, resumed);
        assert_ne!(StdRng::from_state([0; 4]).state(), [0; 4]);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&y));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5usize..5);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle of 50 elements left them sorted");
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
