// rowfpga-lint: hot-path
//! Incremental global routing: feedthrough (vertical segment) assignment.
//!
//! Global routing for row-based FPGAs consists primarily of assigning
//! feedthroughs to nets that span several channels (paper §3.3). The
//! incremental router works down the queue `U_G`, longest estimated net
//! first, and assigns each net the available chain of vertical segments
//! closest to the center of its bounding box. The heuristic is deliberately
//! simple and fast: the annealer relies on *many* cheap routing attempts in
//! ever-better placements rather than one exhaustive search.

use rowfpga_arch::{Architecture, ChannelId, ColId, VSegId};
use rowfpga_netlist::{NetId, Netlist};
use rowfpga_place::Placement;

use crate::config::RouterConfig;
use crate::spans::{net_requirements_into, NetRequirements};
use crate::state::RoutingState;

/// Attempts to globally route every net in `U_G`, longest first. Returns
/// the number of nets that obtained a global routing decision.
///
/// The queue lives in the state's persistent scratch buffer and requirement
/// records are refilled in place, so a steady-state pass allocates nothing.
pub fn global_route_pass(
    state: &mut RoutingState,
    arch: &Architecture,
    netlist: &Netlist,
    placement: &Placement,
    cfg: &RouterConfig,
) -> usize {
    let mut gqueue = std::mem::take(&mut state.scratch.gqueue);
    let mut n = 0;
    // Retry skip: a net whose last attempt failed while the vertical
    // occupancy of its channel range was exactly as it is now would fail
    // identically (failed attempts have no side effects, and a net's
    // requirements cannot change while it sits in `U_G` — any route or
    // placement change re-enqueues it, clearing the stamp). Leave such
    // nets out of the queue entirely.
    for net in state.ug() {
        if state.global_retry_doomed(net) {
            continue;
        }
        if n < gqueue.len() {
            gqueue[n].0 = net;
            net_requirements_into(arch, netlist, placement, net, &mut gqueue[n].1);
        } else {
            let mut req = NetRequirements::default();
            net_requirements_into(arch, netlist, placement, net, &mut req);
            gqueue.push((net, req));
        }
        n += 1;
    }
    // Sort the live prefix by estimated net length, longest first (ties
    // broken by id for determinism); long nets have the fewest feasible
    // feedthrough choices, so they get first pick (paper §3.3). Entries
    // beyond `n` are stale records kept only for their allocations.
    gqueue[..n].sort_by(|a, b| {
        b.1.estimated_length()
            .cmp(&a.1.estimated_length())
            .then(a.0.cmp(&b.0))
    });

    let mut routed = 0;
    for (net, req) in &gqueue[..n] {
        let seen = state.vtick();
        if try_global_route(state, arch, *net, req, cfg) {
            routed += 1;
        } else {
            state.record_global_failure(*net, seen, req.chan_min, req.chan_max);
        }
    }
    state.scratch.gqueue = gqueue;
    routed
}

/// Attempts to globally route one net. On success, installs the decision
/// (vertical chain, per-channel spans, pending channels) and returns true.
pub(crate) fn try_global_route(
    state: &mut RoutingState,
    arch: &Architecture,
    net: NetId,
    req: &NetRequirements,
    cfg: &RouterConfig,
) -> bool {
    let mut shell = state.take_shell();
    if !req.needs_vertical() {
        // Trivially null global routing (paper §3.3: nets that no longer
        // need vertical resources).
        let (chan, lo, hi) = req.pin_channels[0];
        shell
            .spans
            .push((ChannelId::new(chan), lo as u32, hi as u32));
        shell.pending_channels.push(ChannelId::new(chan));
        shell.globally_routed = true;
        state.set_global(net, shell);
        return true;
    }

    let num_cols = arch.geometry().num_cols();
    let center = req.center_col();
    // Candidate columns in outward order from the bbox center: distance
    // d = 0, 1, 2, …, trying `center - d` before `center + d` — exactly the
    // (distance, column) sort order of the candidate list this scan
    // replaces, without materializing the list.
    for d in 0..num_cols {
        let below = center.checked_sub(d);
        let above = (d > 0).then_some(center + d).filter(|&c| c < num_cols);
        for col in below.into_iter().chain(above) {
            if !find_chain_into(
                state,
                col,
                req.chan_min,
                req.chan_max,
                cfg.max_vchain,
                &mut shell.vsegs,
            ) {
                continue;
            }
            for &(chan, _, _) in &req.pin_channels {
                let (lo, hi) = req
                    .span_in(chan, Some(col))
                    .expect("pin channel has a span");
                shell
                    .spans
                    .push((ChannelId::new(chan), lo as u32, hi as u32));
                shell.pending_channels.push(ChannelId::new(chan));
            }
            shell.vcol = Some(ColId::new(col));
            shell.globally_routed = true;
            state.set_global(net, shell);
            return true;
        }
    }
    state.give_back_shell(shell);
    false
}

/// Greedy minimum-segment chain of *free* vertical segments in `col`
/// covering channels `chan_min..=chan_max`, built into `out`. Consecutive
/// chain segments must touch or overlap (one vertical antifuse per
/// junction). Returns whether a covering chain was found; `out` is left
/// empty on failure.
///
/// Each greedy step — the free first-in-order max-reach segment tappable
/// at `chan_min` (first pick) or extending the covered range (later
/// picks) — is a single lookup in the state's live greedy-step tables,
/// which mirror exactly the scan over the column's segments this search
/// used to perform. A segment already in the chain can never be re-picked:
/// its top equals some earlier reach, which no longer *extends* the reach.
fn find_chain_into(
    state: &RoutingState,
    col: usize,
    chan_min: usize,
    chan_max: usize,
    max_len: usize,
    out: &mut Vec<VSegId>,
) -> bool {
    out.clear();
    let mut reach: Option<usize> = None;
    while out.len() < max_len {
        let best = match reach {
            // First segment must be tappable in chan_min.
            None => state.best_cover(col, chan_min),
            // Later segments must touch the covered range and extend it.
            Some(r) => state.best_extend(col, r),
        };
        let Some((hi, seg)) = best else {
            out.clear();
            return false;
        };
        out.push(seg);
        reach = Some(hi);
        if hi >= chan_max {
            return true;
        }
    }
    out.clear();
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spans::net_requirements;
    use rowfpga_arch::{SegmentationScheme, VerticalScheme};
    use rowfpga_netlist::{generate, GenerateConfig};

    fn setup(rows: usize, cols: usize) -> (Architecture, Netlist, Placement, RoutingState) {
        let nl = generate(&GenerateConfig {
            num_cells: 40,
            num_inputs: 5,
            num_outputs: 5,
            num_seq: 3,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(rows)
            .cols(cols)
            .io_columns(2)
            .tracks_per_channel(10)
            .segmentation(SegmentationScheme::Uniform { len: 4 })
            .verticals(VerticalScheme::Uniform {
                tracks_per_column: 3,
                span: 3,
            })
            .build()
            .unwrap();
        let p = Placement::random(&arch, &nl, 17).unwrap();
        let st = RoutingState::new(&arch, &nl);
        (arch, nl, p, st)
    }

    #[test]
    fn pass_routes_everything_on_a_roomy_chip() {
        let (arch, nl, p, mut st) = setup(5, 12);
        let routed = global_route_pass(&mut st, &arch, &nl, &p, &RouterConfig::default());
        assert_eq!(routed, nl.num_nets());
        assert_eq!(st.globally_unrouted(), 0);
        // every multi-channel net has a chain covering its channel range
        for (id, _) in nl.nets() {
            let req = net_requirements(&arch, &nl, &p, id);
            let route = st.route(id);
            assert!(route.is_globally_routed());
            if req.needs_vertical() {
                let vcol = route.vcol().expect("vertical net has a column");
                let mut covered_lo = usize::MAX;
                let mut covered_hi = 0;
                for v in route.vsegs() {
                    let seg = arch.vseg(*v);
                    assert_eq!(seg.col(), vcol);
                    covered_lo = covered_lo.min(seg.chan_lo().index());
                    covered_hi = covered_hi.max(seg.chan_hi().index());
                }
                assert!(covered_lo <= req.chan_min && covered_hi >= req.chan_max);
            } else {
                assert!(route.vsegs().is_empty());
            }
        }
    }

    #[test]
    fn pending_channels_match_pin_channels() {
        let (arch, nl, p, mut st) = setup(5, 12);
        global_route_pass(&mut st, &arch, &nl, &p, &RouterConfig::default());
        for (id, _) in nl.nets() {
            let req = net_requirements(&arch, &nl, &p, id);
            let route = st.route(id);
            let mut pending: Vec<usize> =
                route.pending_channels().iter().map(|c| c.index()).collect();
            pending.sort_unstable();
            let expected: Vec<usize> = req.pin_channels.iter().map(|x| x.0).collect();
            assert_eq!(pending, expected);
        }
    }

    #[test]
    fn chains_prefer_the_center_column() {
        let (arch, nl, p, mut st) = setup(5, 12);
        global_route_pass(&mut st, &arch, &nl, &p, &RouterConfig::default());
        // On an uncongested chip every net gets a feedthrough at (or next
        // to) its bbox center.
        for (id, _) in nl.nets() {
            let req = net_requirements(&arch, &nl, &p, id);
            if let Some(vcol) = st.route(id).vcol() {
                assert!(
                    vcol.index().abs_diff(req.center_col()) <= 4,
                    "net {id:?} feedthrough {vcol:?} far from center {}",
                    req.center_col()
                );
            }
        }
    }

    #[test]
    fn exhausted_columns_leave_nets_unrouted() {
        // 1 vertical track per column with span 2 on a 4-row chip: crossing
        // all 5 channels needs a 4-segment chain per net; capacity runs out.
        let nl = generate(&GenerateConfig {
            num_cells: 60,
            num_inputs: 10,
            num_outputs: 10,
            num_seq: 5,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(6)
            .cols(12)
            .io_columns(2)
            .verticals(VerticalScheme::Uniform {
                tracks_per_column: 1,
                span: 2,
            })
            .build()
            .unwrap();
        let p = Placement::random(&arch, &nl, 3).unwrap();
        let mut st = RoutingState::new(&arch, &nl);
        global_route_pass(&mut st, &arch, &nl, &p, &RouterConfig::default());
        assert!(
            st.globally_unrouted() > 0,
            "expected vertical congestion on a starved fabric"
        );
    }

    #[test]
    fn rerouting_after_rip_up_reuses_freed_segments() {
        let (arch, nl, p, mut st) = setup(5, 12);
        let cfg = RouterConfig::default();
        global_route_pass(&mut st, &arch, &nl, &p, &cfg);
        let (cell, _) = nl.cells().find(|(_, c)| !c.kind().is_io()).unwrap();
        st.rip_up_cell(&nl, cell);
        let expected = nl.nets_of_cell(cell).len();
        assert_eq!(st.globally_unrouted(), expected);
        let routed = global_route_pass(&mut st, &arch, &nl, &p, &cfg);
        assert_eq!(routed, expected);
        assert_eq!(st.globally_unrouted(), 0);
    }
}
