//! Batch routing for the sequential baseline flow.
//!
//! The traditional flow routes once, after placement froze: a global
//! routing pass assigns feedthroughs to every net, then every channel is
//! detail routed. Failures trigger targeted rip-up-and-retry rounds: every
//! routed net whose span overlaps a failed net in a failing channel is
//! ripped up (freeing both its vertical and horizontal resources) and the
//! channel is repacked. This gives the baseline a competent router in the
//! spirit of Greene et al. [8] / Roy [11], so that wirability comparisons
//! against the simultaneous flow measure the *placement coupling*, not a
//! strawman router.

use rowfpga_arch::Architecture;
use rowfpga_netlist::{NetId, Netlist};
use rowfpga_obs::Obs;
use rowfpga_place::Placement;

use crate::config::RouterConfig;
use crate::state::RoutingState;

/// Result of a batch routing run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Whether every net was fully routed.
    pub fully_routed: bool,
    /// Rip-up-and-retry rounds used (1 = first attempt sufficed).
    pub passes: usize,
    /// Nets left without a global route.
    pub globally_unrouted: usize,
    /// Nets left without a complete detailed route.
    pub incomplete: usize,
    /// Nets given a global route, summed over all rounds.
    pub globally_routed: usize,
    /// (net, channel) detail assignments completed, summed over all rounds.
    pub detail_routed: usize,
    /// (net, channel) detail track-assignment failures, summed over all
    /// rounds (retried nets count once per failing attempt).
    pub detail_failures: usize,
}

/// Routes all nets of a fixed placement, with up to `max_passes`
/// rip-up-and-retry rounds.
///
/// The state is expected to be fresh (all nets unrouted); any existing
/// assignments are ripped up first.
pub fn route_batch(
    state: &mut RoutingState,
    arch: &Architecture,
    netlist: &Netlist,
    placement: &Placement,
    cfg: &RouterConfig,
    max_passes: usize,
) -> BatchOutcome {
    route_batch_observed(
        state,
        arch,
        netlist,
        placement,
        cfg,
        max_passes,
        &Obs::disabled(),
    )
}

/// Like [`route_batch`], with an observability handle: an overall
/// `route.batch` span, one `route.batch.pass` span per rip-up-and-retry
/// round, and counters for routed / failed assignments per round.
#[allow(clippy::too_many_arguments)]
pub fn route_batch_observed(
    state: &mut RoutingState,
    arch: &Architecture,
    netlist: &Netlist,
    placement: &Placement,
    cfg: &RouterConfig,
    max_passes: usize,
    obs: &Obs,
) -> BatchOutcome {
    obs.span_start("route.batch");
    for (net, _) in netlist.nets() {
        state.rip_up(net);
    }
    let mut passes = 0;
    let mut globally_routed = 0;
    let mut detail_routed = 0;
    let mut detail_failures = 0;
    loop {
        passes += 1;
        obs.span_start("route.batch.pass");
        let stats = state.route_incremental(arch, netlist, placement, cfg);
        globally_routed += stats.globally_routed;
        detail_routed += stats.detail_routed;
        detail_failures += stats.detail_failures;
        obs.add("route.batch.globally_routed", stats.globally_routed as u64);
        obs.add("route.batch.detail_routed", stats.detail_routed as u64);
        obs.add("route.batch.detail_failures", stats.detail_failures as u64);
        if state.is_fully_routed() || passes >= max_passes.max(1) {
            obs.span_end("route.batch.pass");
            break;
        }
        rip_up_blockers(state, arch, netlist);
        // Give the previously-failed nets first pick of the freed space
        // before their blockers reroute; without this the deterministic
        // longest-span-first ordering replays the identical failure.
        let retry = crate::detail::detail_route_pass(state, arch, cfg);
        detail_routed += retry.routed;
        detail_failures += retry.failures;
        obs.add("route.batch.retry_routed", retry.routed as u64);
        obs.add("route.batch.retry_failures", retry.failures as u64);
        obs.span_end("route.batch.pass");
    }
    obs.inc("route.batch.calls");
    obs.observe("route.batch.passes", passes as f64);
    obs.span_end("route.batch");
    BatchOutcome {
        fully_routed: state.is_fully_routed(),
        passes,
        globally_unrouted: state.globally_unrouted(),
        incomplete: state.incomplete(),
        globally_routed,
        detail_routed,
        detail_failures,
    }
}

/// For every channel with failures, rips up the routed nets whose spans
/// overlap a failed net's span there (and the failed vertical nets'
/// blockers at their preferred columns are freed transitively through the
/// rip-up of those nets' entire routes).
fn rip_up_blockers(state: &mut RoutingState, arch: &Architecture, netlist: &Netlist) {
    let mut victims: Vec<NetId> = Vec::new();
    for channel in state.dirty_channels() {
        let failed_spans: Vec<(usize, usize)> = state
            .ud(channel)
            .filter_map(|n| state.route(n).span_in(channel))
            .collect();
        if failed_spans.is_empty() {
            continue;
        }
        for (net, _) in netlist.nets() {
            if state.route(net).hsegs_in(channel).is_none() {
                continue;
            }
            let Some((lo, hi)) = state.route(net).span_in(channel) else {
                continue;
            };
            if failed_spans
                .iter()
                .any(|&(flo, fhi)| lo <= fhi && flo <= hi)
            {
                victims.push(net);
            }
        }
    }
    victims.sort_unstable();
    victims.dedup();
    for net in victims {
        state.rip_up(net);
    }
    let _ = arch;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowfpga_netlist::{generate, GenerateConfig};

    fn problem(tracks: usize) -> (Architecture, Netlist, Placement) {
        let nl = generate(&GenerateConfig {
            num_cells: 60,
            num_inputs: 6,
            num_outputs: 6,
            num_seq: 4,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(6)
            .cols(14)
            .io_columns(2)
            .tracks_per_channel(tracks)
            .build()
            .unwrap();
        let p = Placement::random(&arch, &nl, 77).unwrap();
        (arch, nl, p)
    }

    #[test]
    fn batch_routes_a_roomy_chip_in_one_pass() {
        let (arch, nl, p) = problem(24);
        let mut st = RoutingState::new(&arch, &nl);
        let out = route_batch(&mut st, &arch, &nl, &p, &RouterConfig::default(), 5);
        assert!(out.fully_routed);
        assert_eq!(out.passes, 1);
        assert_eq!(out.incomplete, 0);
        assert_eq!(out.detail_failures, 0);
        assert!(out.detail_routed > 0);
        assert!(out.globally_routed > 0);
    }

    #[test]
    fn retry_rounds_help_on_tight_chips() {
        // Find a track count where the first pass fails but retries recover.
        let (arch, nl, p) = problem(24);
        let cfg = RouterConfig::default();
        let mut single_pass_fail_tracks = None;
        for tracks in (2..24).rev() {
            let narrow = arch.with_tracks(tracks).unwrap();
            let mut st = RoutingState::new(&narrow, &nl);
            let out = route_batch(&mut st, &narrow, &nl, &p, &cfg, 1);
            if !out.fully_routed {
                single_pass_fail_tracks = Some(tracks + 1);
                break;
            }
        }
        // With generous retries the router should do at least as well as a
        // single pass everywhere above the failure point.
        if let Some(t) = single_pass_fail_tracks {
            let narrow = arch.with_tracks(t).unwrap();
            let mut st = RoutingState::new(&narrow, &nl);
            let out = route_batch(&mut st, &narrow, &nl, &p, &cfg, 8);
            assert!(out.fully_routed, "retries regressed vs single pass");
        }
    }

    #[test]
    fn outcome_reports_failures_honestly() {
        let (arch, nl, p) = problem(1);
        let mut st = RoutingState::new(&arch, &nl);
        let out = route_batch(&mut st, &arch, &nl, &p, &RouterConfig::default(), 4);
        assert!(!out.fully_routed);
        assert!(out.incomplete > 0);
        assert_eq!(out.incomplete, st.incomplete());
        assert_eq!(out.globally_unrouted, st.globally_unrouted());
        assert!(out.detail_failures > 0, "starved chip must count failures");
    }

    #[test]
    fn observed_batch_reports_spans_and_counters() {
        let (arch, nl, p) = problem(24);
        let mut st = RoutingState::new(&arch, &nl);
        let obs = Obs::metrics_only();
        let out = route_batch_observed(&mut st, &arch, &nl, &p, &RouterConfig::default(), 5, &obs);
        obs.with_session(|s| {
            assert_eq!(s.metrics.counter("route.batch.calls"), 1);
            assert_eq!(
                s.metrics.counter("route.batch.detail_routed") as usize,
                out.detail_routed
            );
            let batch = s.profiler.total("route.batch").expect("batch span");
            assert_eq!(batch.calls, 1);
            let pass = s.profiler.total("route.batch.pass").expect("pass span");
            assert_eq!(pass.calls, out.passes as u64);
        })
        .unwrap();
        // Observation must not change routing decisions.
        let mut plain = RoutingState::new(&arch, &nl);
        let base = route_batch(&mut plain, &arch, &nl, &p, &RouterConfig::default(), 5);
        assert_eq!(out, base);
    }

    #[test]
    fn batch_is_deterministic() {
        let (arch, nl, p) = problem(4);
        let cfg = RouterConfig::default();
        let mut a = RoutingState::new(&arch, &nl);
        let mut b = RoutingState::new(&arch, &nl);
        let oa = route_batch(&mut a, &arch, &nl, &p, &cfg, 6);
        let ob = route_batch(&mut b, &arch, &nl, &p, &cfg, 6);
        assert_eq!(oa, ob);
        for (id, _) in nl.nets() {
            assert_eq!(a.route(id), b.route(id));
        }
    }
}
