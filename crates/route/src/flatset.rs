// rowfpga-lint: hot-path
//! Dense index sets for the routing hot path.
//!
//! The unrouted-net queues (`U_G`, per-channel `U_D`) and the dirty-channel
//! set are membership sets over small integer ids that are mutated on every
//! annealing move. A `BTreeSet` pays an allocation and a pointer chase per
//! operation; [`DenseSet`] instead keeps a dense item vector plus a
//! position index, giving O(1) insert/remove/contains with zero allocation
//! in steady state. Iteration order is unspecified (it reflects the
//! insertion/removal history); every consumer imposes its own total order
//! before acting, so set semantics are all that is promised.

/// A set of indices in `0..capacity` with O(1) operations and
/// allocation-free iteration.
#[derive(Clone, Debug)]
pub(crate) struct DenseSet {
    /// The members, densely packed in unspecified order.
    items: Vec<u32>,
    /// `pos[i]` is the position of `i` in `items`, or [`ABSENT`].
    pos: Vec<u32>,
}

const ABSENT: u32 = u32::MAX;

impl DenseSet {
    /// The empty set over `0..capacity`.
    // rowfpga-lint: begin-allow(hot-path) reason=one-time constructor; membership ops beyond here are allocation-free
    pub fn new(capacity: usize) -> DenseSet {
        assert!(capacity < ABSENT as usize);
        DenseSet {
            items: Vec::new(),
            pos: vec![ABSENT; capacity],
        }
    }
    // rowfpga-lint: end-allow(hot-path)

    /// The full set `{0, …, capacity-1}`.
    // rowfpga-lint: begin-allow(hot-path) reason=one-time constructor; membership ops beyond here are allocation-free
    pub fn full(capacity: usize) -> DenseSet {
        assert!(capacity < ABSENT as usize);
        DenseSet {
            items: (0..capacity as u32).collect(),
            pos: (0..capacity as u32).collect(),
        }
    }
    // rowfpga-lint: end-allow(hot-path)

    /// Number of members.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether `i` is a member.
    #[cfg(test)]
    pub fn contains(&self, i: usize) -> bool {
        self.pos[i] != ABSENT
    }

    /// Inserts `i`; returns whether it was newly added.
    pub fn insert(&mut self, i: usize) -> bool {
        if self.pos[i] != ABSENT {
            return false;
        }
        self.pos[i] = self.items.len() as u32;
        self.items.push(i as u32);
        true
    }

    /// Removes `i` (swap-remove); returns whether it was a member.
    pub fn remove(&mut self, i: usize) -> bool {
        let p = self.pos[i];
        if p == ABSENT {
            return false;
        }
        self.pos[i] = ABSENT;
        // `pos[i]` was a live index, so `items` is non-empty and the pop
        // always yields; the `if let` merely keeps this panic-free.
        if let Some(last) = self.items.pop() {
            if last as usize != i {
                self.items[p as usize] = last;
                self.pos[last as usize] = p;
            }
        }
        true
    }

    /// The members, in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.items.iter().map(|&i| i as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = DenseSet::new(10);
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(!s.insert(3), "double insert is a no-op");
        assert!(s.insert(7));
        assert!(s.contains(3) && s.contains(7) && !s.contains(0));
        assert_eq!(s.len(), 2);
        assert!(s.remove(3));
        assert!(!s.remove(3), "double remove is a no-op");
        assert!(!s.contains(3) && s.contains(7));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn full_set_holds_everything() {
        let mut s = DenseSet::full(5);
        assert_eq!(s.len(), 5);
        let mut members: Vec<usize> = s.iter().collect();
        members.sort_unstable();
        assert_eq!(members, vec![0, 1, 2, 3, 4]);
        assert!(s.remove(0) && s.remove(4));
        assert_eq!(s.len(), 3);
        assert!(s.insert(4));
        assert!(s.contains(4) && !s.contains(0));
    }

    #[test]
    fn swap_remove_keeps_positions_consistent() {
        let mut s = DenseSet::new(8);
        for i in 0..8 {
            s.insert(i);
        }
        // Remove from the middle repeatedly; membership must stay exact.
        for i in [3, 0, 7, 5] {
            assert!(s.remove(i));
        }
        let mut members: Vec<usize> = s.iter().collect();
        members.sort_unstable();
        assert_eq!(members, vec![1, 2, 4, 6]);
        for i in [3, 0, 7, 5] {
            assert!(s.insert(i));
        }
        assert_eq!(s.len(), 8);
    }
}
