//! Geometric routing requirements of a net under a placement.

use rowfpga_arch::Architecture;
use rowfpga_netlist::{NetId, Netlist};
use rowfpga_place::{pin_loc, Placement};

/// What a net needs from the fabric, derived from its pin locations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetRequirements {
    /// Channels containing at least one pin, ascending, with the inclusive
    /// column span of the pins in each.
    pub pin_channels: Vec<(usize, usize, usize)>,
    /// Lowest pin channel.
    pub chan_min: usize,
    /// Highest pin channel.
    pub chan_max: usize,
    /// Leftmost pin column.
    pub col_min: usize,
    /// Rightmost pin column.
    pub col_max: usize,
}

impl NetRequirements {
    /// Whether the net needs vertical (feedthrough) resources.
    pub fn needs_vertical(&self) -> bool {
        self.chan_min != self.chan_max
    }

    /// Center column of the bounding box — the global router's preferred
    /// feedthrough column (paper §3.3).
    pub fn center_col(&self) -> usize {
        (self.col_min + self.col_max) / 2
    }

    /// Estimated length used to prioritize the unrouted-net queues: the
    /// half-perimeter with vertical hops double-weighted.
    pub fn estimated_length(&self) -> usize {
        (self.col_max - self.col_min) + 2 * (self.chan_max - self.chan_min)
    }

    /// The column span (inclusive) the net must cover in `channel`, given a
    /// feedthrough column choice: the pins' span, stretched to reach the
    /// feedthrough column when the net spans several channels.
    pub fn span_in(&self, channel: usize, vcol: Option<usize>) -> Option<(usize, usize)> {
        let &(_, lo, hi) = self.pin_channels.iter().find(|(c, _, _)| *c == channel)?;
        match vcol {
            Some(x) if self.needs_vertical() => Some((lo.min(x), hi.max(x))),
            _ => Some((lo, hi)),
        }
    }
}

/// Computes the routing requirements of `net` under `placement`.
pub fn net_requirements(
    arch: &Architecture,
    netlist: &Netlist,
    placement: &Placement,
    net: NetId,
) -> NetRequirements {
    let mut req = NetRequirements::default();
    net_requirements_into(arch, netlist, placement, net, &mut req);
    req
}

/// Computes the routing requirements of `net` into an existing record,
/// reusing its `pin_channels` allocation — the hot-path form used by the
/// global router's persistent queue buffer.
pub fn net_requirements_into(
    arch: &Architecture,
    netlist: &Netlist,
    placement: &Placement,
    net: NetId,
    req: &mut NetRequirements,
) {
    req.pin_channels.clear();
    let (mut col_min, mut col_max) = (usize::MAX, 0);
    for pin in netlist.net(net).pins() {
        let l = pin_loc(arch, netlist, placement, pin);
        let (c, col) = (l.channel.index(), l.col.index());
        col_min = col_min.min(col);
        col_max = col_max.max(col);
        match req.pin_channels.iter_mut().find(|(pc, _, _)| *pc == c) {
            Some((_, lo, hi)) => {
                *lo = (*lo).min(col);
                *hi = (*hi).max(col);
            }
            None => req.pin_channels.push((c, col, col)),
        }
    }
    debug_assert!(!req.pin_channels.is_empty());
    req.pin_channels.sort_unstable();
    req.chan_min = req.pin_channels.first().map(|x| x.0).unwrap_or(0);
    req.chan_max = req.pin_channels.last().map(|x| x.0).unwrap_or(0);
    req.col_min = col_min;
    req.col_max = col_max;
}

/// The bounding box of a net's pins: `(chan_min, chan_max, col_min,
/// col_max)`, allocation-free. The delay estimator needs only the extents,
/// not the per-channel spans.
pub fn net_extents(
    arch: &Architecture,
    netlist: &Netlist,
    placement: &Placement,
    net: NetId,
) -> (usize, usize, usize, usize) {
    let (mut chan_min, mut chan_max) = (usize::MAX, 0);
    let (mut col_min, mut col_max) = (usize::MAX, 0);
    for pin in netlist.net(net).pins() {
        let l = pin_loc(arch, netlist, placement, pin);
        chan_min = chan_min.min(l.channel.index());
        chan_max = chan_max.max(l.channel.index());
        col_min = col_min.min(l.col.index());
        col_max = col_max.max(l.col.index());
    }
    debug_assert!(chan_min != usize::MAX, "net has pins");
    (chan_min, chan_max, col_min, col_max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowfpga_netlist::{CellKind, Netlist};
    use rowfpga_place::net_pin_locs;

    fn setup() -> (Architecture, Netlist, Placement) {
        let mut b = Netlist::builder();
        let a = b.add_cell("a", CellKind::Input);
        let g = b.add_cell("g", CellKind::comb(1));
        let q = b.add_cell("q", CellKind::Output);
        b.connect("na", a, [(g, 1)]).unwrap();
        b.connect("ng", g, [(q, 0)]).unwrap();
        let nl = b.build().unwrap();
        let arch = Architecture::builder()
            .rows(4)
            .cols(10)
            .io_columns(1)
            .build()
            .unwrap();
        let p = Placement::random(&arch, &nl, 9).unwrap();
        (arch, nl, p)
    }

    #[test]
    fn requirements_cover_all_pins() {
        let (arch, nl, p) = setup();
        for (id, _) in nl.nets() {
            let req = net_requirements(&arch, &nl, &p, id);
            let locs = net_pin_locs(&arch, &nl, &p, id);
            for l in &locs {
                let c = l.channel.index();
                assert!(req.chan_min <= c && c <= req.chan_max);
                let (_, lo, hi) = *req
                    .pin_channels
                    .iter()
                    .find(|(pc, _, _)| *pc == c)
                    .expect("pin channel listed");
                assert!(lo <= l.col.index() && l.col.index() <= hi);
            }
            assert!(req.center_col() >= req.col_min && req.center_col() <= req.col_max);
        }
    }

    #[test]
    fn span_stretches_to_feedthrough_column() {
        let req = NetRequirements {
            pin_channels: vec![(0, 2, 4), (3, 7, 7)],
            chan_min: 0,
            chan_max: 3,
            col_min: 2,
            col_max: 7,
        };
        assert!(req.needs_vertical());
        assert_eq!(req.span_in(0, Some(5)), Some((2, 5)));
        assert_eq!(req.span_in(3, Some(5)), Some((5, 7)));
        assert_eq!(req.span_in(1, Some(5)), None, "no pins in channel 1");
        // inside the pin span: no stretch
        assert_eq!(req.span_in(0, Some(3)), Some((2, 4)));
    }

    #[test]
    fn single_channel_net_needs_no_vertical() {
        let req = NetRequirements {
            pin_channels: vec![(2, 1, 6)],
            chan_min: 2,
            chan_max: 2,
            col_min: 1,
            col_max: 6,
        };
        assert!(!req.needs_vertical());
        assert_eq!(req.span_in(2, None), Some((1, 6)));
        assert_eq!(req.estimated_length(), 5);
    }

    #[test]
    fn estimated_length_weights_vertical_hops() {
        let wide = NetRequirements {
            pin_channels: vec![(0, 0, 6)],
            chan_min: 0,
            chan_max: 0,
            col_min: 0,
            col_max: 6,
        };
        let tall = NetRequirements {
            pin_channels: vec![(0, 3, 3), (3, 3, 3)],
            chan_min: 0,
            chan_max: 3,
            col_min: 3,
            col_max: 3,
        };
        assert_eq!(wide.estimated_length(), 6);
        assert_eq!(tall.estimated_length(), 6);
    }
}
