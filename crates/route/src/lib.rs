//! Incremental global and detailed routing for row-based FPGAs.
//!
//! This crate implements the routing machinery of Nag & Rutenbar's
//! simultaneous place-and-route formulation (paper §3.3–3.4):
//!
//! * [`RoutingState`] tracks, for every net, its disposition — completely
//!   unrouted, globally routed (vertical segments assigned) or globally and
//!   detail routed (horizontal segments assigned too) — plus the occupancy
//!   of every physical segment, the queue `U_G` of globally unrouted nets
//!   and the per-channel queues `U_D(R)` of detail-unrouted nets;
//! * **incremental global routing**: when a cell moves, its nets are ripped
//!   up (vertical *and* horizontal segments freed) and re-queued; the router
//!   then works down `U_G` longest-net-first, assigning each net the free
//!   vertical segment chain closest to the center of its bounding box;
//! * **incremental detailed routing**: each dirty channel's queue is
//!   processed longest-span-first, assigning each net the track whose free
//!   consecutive segments cover its span at minimum cost
//!   (`wastage + segments-used`, after Roy's detailed router \[11\]) — the
//!   constructive pressure toward short, few-antifuse paths that replaces an
//!   explicit wirelength cost term;
//! * **transactions**: every mutation between [`RoutingState::begin_txn`]
//!   and [`RoutingState::rollback`] is journaled, so a rejected annealing
//!   move restores the exact prior routing;
//! * **batch routing** ([`route_batch`]) for the sequential baseline flow,
//!   and [`verify_routing`] which independently checks electrical
//!   connectivity and exclusive segment ownership of any state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod config;
mod detail;
mod flatset;
mod global;
mod incremental;
mod route;
mod snapshot;
mod spans;
mod state;
mod verify;

pub use batch::{route_batch, route_batch_observed, BatchOutcome};
pub use config::RouterConfig;
pub use detail::{detail_route_pass, DetailPassStats};
pub use global::global_route_pass;
pub use incremental::RerouteStats;
pub use route::{NetRoute, NetRouteState};
pub use snapshot::{NetRouteSnapshot, RouteRestoreError};
pub use spans::{net_extents, net_requirements, net_requirements_into, NetRequirements};
pub use state::RoutingState;
pub use verify::{verify_routing, RouteVerifyError};
