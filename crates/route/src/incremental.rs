// rowfpga-lint: hot-path
//! The combined incremental reroute: the cascade that follows every
//! placement perturbation (paper §3.3–3.4).

use rowfpga_arch::Architecture;
use rowfpga_netlist::Netlist;
use rowfpga_place::Placement;

use crate::config::RouterConfig;
use crate::detail::detail_route_pass;
use crate::global::global_route_pass;
use crate::state::RoutingState;

/// Counts from one incremental reroute.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RerouteStats {
    /// Nets that obtained a global routing decision in this pass.
    pub globally_routed: usize,
    /// (net, channel) detailed assignments completed in this pass.
    pub detail_routed: usize,
    /// (net, channel) detailed track-assignment attempts that failed (every
    /// feasible track blocked); the nets stay queued for later passes.
    pub detail_failures: usize,
}

impl RerouteStats {
    /// Total nets touched by this cascade (global + detail work items).
    pub fn cascade_size(&self) -> usize {
        self.globally_routed + self.detail_routed
    }
}

impl RoutingState {
    /// Runs one incremental global pass over `U_G` followed by one detailed
    /// pass over every dirty channel — the repair cascade triggered by a
    /// placement or pinmap move after the affected nets were ripped up.
    pub fn route_incremental(
        &mut self,
        arch: &Architecture,
        netlist: &Netlist,
        placement: &Placement,
        cfg: &RouterConfig,
    ) -> RerouteStats {
        let globally_routed = global_route_pass(self, arch, netlist, placement, cfg);
        let detail = detail_route_pass(self, arch, cfg);
        RerouteStats {
            globally_routed,
            detail_routed: detail.routed,
            detail_failures: detail.failures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowfpga_netlist::{generate, GenerateConfig};

    #[test]
    fn incremental_reroute_converges_after_a_move() {
        let nl = generate(&GenerateConfig {
            num_cells: 50,
            num_inputs: 6,
            num_outputs: 6,
            num_seq: 4,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(5)
            .cols(14)
            .io_columns(2)
            .tracks_per_channel(20)
            .build()
            .unwrap();
        let mut p = Placement::random(&arch, &nl, 31).unwrap();
        let mut st = RoutingState::new(&arch, &nl);
        let cfg = RouterConfig::default();
        st.route_incremental(&arch, &nl, &p, &cfg);
        assert!(st.is_fully_routed(), "roomy chip should route fully");

        // Perturb: swap two logic cells, rip up, repair.
        let cells: Vec<_> = nl
            .cells()
            .filter(|(_, c)| !c.kind().is_io())
            .map(|(id, _)| id)
            .collect();
        for w in cells.windows(2).take(10) {
            let (a, b) = (p.site_of(w[0]), p.site_of(w[1]));
            p.swap_sites(&arch, a, b);
            st.rip_up_cell(&nl, w[0]);
            st.rip_up_cell(&nl, w[1]);
            st.route_incremental(&arch, &nl, &p, &cfg);
            assert!(st.is_fully_routed(), "repair failed after swap");
        }
    }

    #[test]
    fn reroute_is_idempotent_when_nothing_is_dirty() {
        let nl = generate(&GenerateConfig {
            num_cells: 30,
            num_inputs: 4,
            num_outputs: 4,
            num_seq: 2,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(4)
            .cols(12)
            .io_columns(2)
            .tracks_per_channel(20)
            .build()
            .unwrap();
        let p = Placement::random(&arch, &nl, 8).unwrap();
        let mut st = RoutingState::new(&arch, &nl);
        let cfg = RouterConfig::default();
        st.route_incremental(&arch, &nl, &p, &cfg);
        assert!(st.is_fully_routed(), "roomy chip should route fully");
        let stats = st.route_incremental(&arch, &nl, &p, &cfg);
        assert_eq!(stats, RerouteStats::default());
        assert_eq!(stats.cascade_size(), 0);
    }
}
