//! The mutable routing state: segment occupancy, per-net routes and the
//! unrouted-net queues, with transactional undo.

use std::collections::{BTreeSet, HashMap};

use rowfpga_arch::{Architecture, ChannelId, ColId, HSegId, VSegId};
use rowfpga_netlist::{CellId, NetId, Netlist};

use crate::route::{NetRoute, NetRouteState};
use crate::snapshot::{NetRouteSnapshot, RouteRestoreError};

/// The complete routing disposition of a layout in progress.
///
/// Invariants maintained by every mutation:
///
/// * a segment's owner is exactly the net whose [`NetRoute`] lists it;
/// * the global queue `U_G` holds exactly the nets without a global routing
///   decision ([`NetRoute::is_globally_routed`] is false);
/// * the channel queue `U_D(R)` holds exactly the nets with `R` in their
///   [`NetRoute::pending_channels`];
/// * [`RoutingState::incomplete`] equals the number of nets whose state is
///   not [`NetRouteState::Detailed`] (the paper's `D` cost term), and
///   [`RoutingState::globally_unrouted`] equals `|U_G|` (the `G` term).
#[derive(Clone, Debug)]
pub struct RoutingState {
    hseg_owner: Vec<Option<NetId>>,
    vseg_owner: Vec<Option<NetId>>,
    routes: Vec<NetRoute>,
    ug: BTreeSet<NetId>,
    ud: Vec<BTreeSet<NetId>>,
    incomplete: usize,
    journal: Option<HashMap<NetId, NetRoute>>,
}

impl RoutingState {
    /// Creates the all-unrouted state: every net queued in `U_G`.
    pub fn new(arch: &Architecture, netlist: &Netlist) -> RoutingState {
        RoutingState {
            hseg_owner: vec![None; arch.num_hsegs()],
            vseg_owner: vec![None; arch.num_vsegs()],
            routes: vec![NetRoute::default(); netlist.num_nets()],
            ug: (0..netlist.num_nets()).map(NetId::new).collect(),
            ud: vec![BTreeSet::new(); arch.geometry().num_channels()],
            incomplete: netlist.num_nets(),
            journal: None,
        }
    }

    /// The route record of `net`.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn route(&self, net: NetId) -> &NetRoute {
        &self.routes[net.index()]
    }

    /// The routing state of `net`.
    pub fn net_state(&self, net: NetId) -> NetRouteState {
        self.routes[net.index()].state()
    }

    /// The owner of a horizontal segment.
    pub fn hseg_owner(&self, seg: HSegId) -> Option<NetId> {
        self.hseg_owner[seg.index()]
    }

    /// The owner of a vertical segment.
    pub fn vseg_owner(&self, seg: VSegId) -> Option<NetId> {
        self.vseg_owner[seg.index()]
    }

    /// Number of globally unrouted nets — the cost term `G` (paper §3.3).
    pub fn globally_unrouted(&self) -> usize {
        self.ug.len()
    }

    /// Number of nets lacking a complete detailed routing — the cost term
    /// `D` (paper §3.4). Globally unrouted nets count here too: a net that
    /// cannot be globally routed automatically cannot be detail routed.
    pub fn incomplete(&self) -> usize {
        self.incomplete
    }

    /// Whether every net is fully routed.
    pub fn is_fully_routed(&self) -> bool {
        self.incomplete == 0
    }

    /// The globally unrouted nets, ascending by id.
    pub fn ug(&self) -> impl Iterator<Item = NetId> + '_ {
        self.ug.iter().copied()
    }

    /// The detail-unrouted nets of one channel, ascending by id.
    pub fn ud(&self, channel: ChannelId) -> impl Iterator<Item = NetId> + '_ {
        self.ud[channel.index()].iter().copied()
    }

    /// Channels whose `U_D` queue is non-empty, ascending.
    pub fn dirty_channels(&self) -> Vec<ChannelId> {
        self.ud
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(i, _)| ChannelId::new(i))
            .collect()
    }

    /// Starts journaling mutations so that [`RoutingState::rollback`] can
    /// restore the current state exactly.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is already active.
    pub fn begin_txn(&mut self) {
        assert!(self.journal.is_none(), "routing transaction already active");
        self.journal = Some(HashMap::new());
    }

    /// Discards the journal, making all mutations since
    /// [`RoutingState::begin_txn`] permanent.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active.
    pub fn commit(&mut self) {
        assert!(self.journal.is_some(), "no routing transaction to commit");
        self.journal = None;
    }

    /// Restores the state to the instant of [`RoutingState::begin_txn`].
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active.
    pub fn rollback(&mut self) {
        let journal = self
            .journal
            .take()
            .expect("no routing transaction to roll back");
        // Phase 1: strip the current routes of every touched net, freeing
        // their segments and queue memberships. Two phases are required
        // because a segment freed from one net during the transaction may
        // currently be held by another touched net.
        let touched: Vec<NetId> = journal.keys().copied().collect();
        for &net in &touched {
            let route = std::mem::take(&mut self.routes[net.index()]);
            self.release_segments(net, &route);
            self.update_queues(net, &route, &NetRoute::default());
            if route.state() == NetRouteState::Detailed {
                self.incomplete += 1;
            }
        }
        // Phase 2: reinstate the saved routes.
        for (net, saved) in journal {
            self.claim_segments(net, &saved);
            self.update_queues(net, &NetRoute::default(), &saved);
            if saved.state() == NetRouteState::Detailed {
                self.incomplete -= 1;
            }
            self.routes[net.index()] = saved;
        }
    }

    /// Whether a transaction is active.
    pub fn txn_active(&self) -> bool {
        self.journal.is_some()
    }

    /// The nets whose routes have changed since [`RoutingState::begin_txn`]
    /// (sorted). Layout engines use this as the exact set whose delays must
    /// be refreshed after the reroute cascade. Empty when no transaction is
    /// active.
    pub fn touched_nets(&self) -> Vec<NetId> {
        match &self.journal {
            Some(j) => {
                let mut nets: Vec<NetId> = j.keys().copied().collect();
                nets.sort_unstable();
                nets
            }
            None => Vec::new(),
        }
    }

    /// Rips up `net`: frees its vertical and horizontal segments and
    /// re-queues it in `U_G` (paper §3.3: a moved cell's nets lose both
    /// their global and detailed routing).
    pub fn rip_up(&mut self, net: NetId) {
        self.set_route(net, NetRoute::default());
    }

    /// Rips up every net connected to `cell`.
    pub fn rip_up_cell(&mut self, netlist: &Netlist, cell: CellId) {
        for net in netlist.nets_of_cell(cell) {
            self.rip_up(net);
        }
    }

    /// Installs a global routing decision for `net`: the vertical chain (or
    /// the trivial empty chain for single-channel nets), the per-channel
    /// spans and the channels awaiting detailed routing.
    pub(crate) fn set_global(
        &mut self,
        net: NetId,
        vsegs: Vec<VSegId>,
        vcol: Option<ColId>,
        spans: Vec<(ChannelId, u32, u32)>,
        pending_channels: Vec<ChannelId>,
    ) {
        debug_assert!(
            !self.routes[net.index()].globally_routed,
            "net must be ripped up before global rerouting"
        );
        self.set_route(
            net,
            NetRoute {
                vsegs,
                vcol,
                hsegs: Vec::new(),
                pending_channels,
                spans,
                globally_routed: true,
            },
        );
    }

    /// Records a successful detailed routing of `net` in `channel`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the channel is not pending for the net.
    pub(crate) fn set_channel_routed(&mut self, net: NetId, channel: ChannelId, segs: Vec<HSegId>) {
        let mut route = self.routes[net.index()].clone();
        let pos = route
            .pending_channels
            .iter()
            .position(|c| *c == channel)
            .expect("channel not pending for net");
        route.pending_channels.swap_remove(pos);
        debug_assert!(route.hsegs_in(channel).is_none());
        route.hsegs.push((channel, segs));
        self.set_route(net, route);
    }

    /// Replaces `net`'s route, maintaining ownership, queues, counters and
    /// the journal.
    fn set_route(&mut self, net: NetId, new: NetRoute) {
        // Take the old route by value so ownership, queues and counters can
        // be updated without cloning either route; the old value then moves
        // into the journal (first touch only) or is dropped.
        let old = std::mem::take(&mut self.routes[net.index()]);
        self.release_segments(net, &old);
        self.claim_segments(net, &new);
        self.update_queues(net, &old, &new);
        let was_done = old.state() == NetRouteState::Detailed;
        let is_done = new.state() == NetRouteState::Detailed;
        match (was_done, is_done) {
            (false, true) => self.incomplete -= 1,
            (true, false) => self.incomplete += 1,
            _ => {}
        }
        self.routes[net.index()] = new;
        if let Some(journal) = &mut self.journal {
            journal.entry(net).or_insert(old);
        }
    }

    fn release_segments(&mut self, net: NetId, route: &NetRoute) {
        for v in &route.vsegs {
            debug_assert_eq!(self.vseg_owner[v.index()], Some(net));
            self.vseg_owner[v.index()] = None;
        }
        for (_, segs) in &route.hsegs {
            for h in segs {
                debug_assert_eq!(self.hseg_owner[h.index()], Some(net));
                self.hseg_owner[h.index()] = None;
            }
        }
    }

    fn claim_segments(&mut self, net: NetId, route: &NetRoute) {
        for v in &route.vsegs {
            assert!(
                self.vseg_owner[v.index()].is_none(),
                "vertical segment {v:?} already owned"
            );
            self.vseg_owner[v.index()] = Some(net);
        }
        for (_, segs) in &route.hsegs {
            for h in segs {
                assert!(
                    self.hseg_owner[h.index()].is_none(),
                    "horizontal segment {h:?} already owned"
                );
                self.hseg_owner[h.index()] = Some(net);
            }
        }
    }

    fn update_queues(&mut self, net: NetId, old: &NetRoute, new: &NetRoute) {
        match (old.globally_routed, new.globally_routed) {
            (true, false) => {
                self.ug.insert(net);
            }
            (false, true) => {
                self.ug.remove(&net);
            }
            _ => {}
        }
        for c in &old.pending_channels {
            if !new.pending_channels.contains(c) {
                self.ud[c.index()].remove(&net);
            }
        }
        for c in &new.pending_channels {
            if !old.pending_channels.contains(c) {
                self.ud[c.index()].insert(net);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowfpga_netlist::{generate, GenerateConfig};

    fn setup() -> (Architecture, Netlist, RoutingState) {
        let nl = generate(&GenerateConfig {
            num_cells: 30,
            num_inputs: 4,
            num_outputs: 4,
            num_seq: 2,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(4)
            .cols(10)
            .io_columns(1)
            .build()
            .unwrap();
        let st = RoutingState::new(&arch, &nl);
        (arch, nl, st)
    }

    #[test]
    fn initial_state_is_all_unrouted() {
        let (_, nl, st) = setup();
        assert_eq!(st.globally_unrouted(), nl.num_nets());
        assert_eq!(st.incomplete(), nl.num_nets());
        assert!(!st.is_fully_routed());
        assert!(st.dirty_channels().is_empty());
        for (id, _) in nl.nets() {
            assert_eq!(st.net_state(id), NetRouteState::Unrouted);
        }
    }

    #[test]
    fn global_then_detailed_transitions_counters() {
        let (arch, nl, mut st) = setup();
        let net = NetId::new(0);
        let chan = ChannelId::new(1);
        let vseg = arch.vsegs_at(ColId::new(3))[0];
        assert!(vseg.reaches(chan));
        st.set_global(
            net,
            vec![vseg.id()],
            Some(ColId::new(3)),
            vec![(chan, 2, 5)],
            vec![chan],
        );
        assert_eq!(st.net_state(net), NetRouteState::Global);
        assert_eq!(st.globally_unrouted(), nl.num_nets() - 1);
        assert_eq!(st.incomplete(), nl.num_nets());
        assert_eq!(st.dirty_channels(), vec![chan]);
        assert_eq!(st.vseg_owner(vseg.id()), Some(net));

        let hseg = arch.channel_tracks(chan)[0].segments()[0].id();
        st.set_channel_routed(net, chan, vec![hseg]);
        assert_eq!(st.net_state(net), NetRouteState::Detailed);
        assert_eq!(st.incomplete(), nl.num_nets() - 1);
        assert!(st.dirty_channels().is_empty());
        assert_eq!(st.hseg_owner(hseg), Some(net));

        st.rip_up(net);
        assert_eq!(st.net_state(net), NetRouteState::Unrouted);
        assert_eq!(st.globally_unrouted(), nl.num_nets());
        assert_eq!(st.incomplete(), nl.num_nets());
        assert_eq!(st.vseg_owner(vseg.id()), None);
        assert_eq!(st.hseg_owner(hseg), None);
    }

    #[test]
    fn rollback_restores_routes_queues_and_ownership() {
        let (arch, _nl, mut st) = setup();
        let net_a = NetId::new(0);
        let net_b = NetId::new(1);
        let chan = ChannelId::new(0);
        let hseg = arch.channel_tracks(chan)[0].segments()[0].id();

        // Pre-transaction: net_a fully routed in channel 0.
        st.set_global(net_a, Vec::new(), None, vec![(chan, 0, 2)], vec![chan]);
        st.set_channel_routed(net_a, chan, vec![hseg]);
        let g0 = st.globally_unrouted();
        let d0 = st.incomplete();

        // Transaction: rip up net_a, give its segment to net_b, then undo.
        st.begin_txn();
        st.rip_up(net_a);
        st.set_global(net_b, Vec::new(), None, vec![(chan, 0, 2)], vec![chan]);
        st.set_channel_routed(net_b, chan, vec![hseg]);
        assert_eq!(st.hseg_owner(hseg), Some(net_b));
        st.rollback();

        assert_eq!(st.hseg_owner(hseg), Some(net_a));
        assert_eq!(st.net_state(net_a), NetRouteState::Detailed);
        assert_eq!(st.net_state(net_b), NetRouteState::Unrouted);
        assert_eq!(st.globally_unrouted(), g0);
        assert_eq!(st.incomplete(), d0);
        assert!(st.ug().any(|n| n == net_b));
        assert!(st.ud(chan).next().is_none());
    }

    #[test]
    fn commit_makes_changes_permanent() {
        let (arch, _nl, mut st) = setup();
        let net = NetId::new(2);
        let chan = ChannelId::new(0);
        let hseg = arch.channel_tracks(chan)[0].segments()[0].id();
        st.begin_txn();
        st.set_global(net, Vec::new(), None, vec![(chan, 0, 1)], vec![chan]);
        st.set_channel_routed(net, chan, vec![hseg]);
        st.commit();
        assert!(!st.txn_active());
        assert_eq!(st.net_state(net), NetRouteState::Detailed);
        assert_eq!(st.hseg_owner(hseg), Some(net));
    }

    #[test]
    #[should_panic(expected = "already owned")]
    fn double_claim_is_detected() {
        let (arch, _nl, mut st) = setup();
        let chan = ChannelId::new(0);
        let hseg = arch.channel_tracks(chan)[0].segments()[0].id();
        st.set_global(
            NetId::new(0),
            Vec::new(),
            None,
            vec![(chan, 0, 1)],
            vec![chan],
        );
        st.set_channel_routed(NetId::new(0), chan, vec![hseg]);
        st.set_global(
            NetId::new(1),
            Vec::new(),
            None,
            vec![(chan, 0, 1)],
            vec![chan],
        );
        st.set_channel_routed(NetId::new(1), chan, vec![hseg]);
    }

    #[test]
    #[should_panic(expected = "transaction already active")]
    fn nested_transactions_are_rejected() {
        let (_, _, mut st) = setup();
        st.begin_txn();
        st.begin_txn();
    }

    #[test]
    fn rip_up_cell_requeues_all_its_nets() {
        let (_, nl, mut st) = setup();
        let (cell, _) = nl.cells().find(|(_, c)| !c.kind().is_io()).unwrap();
        let nets = nl.nets_of_cell(cell);
        assert!(!nets.is_empty());
        // route one of them trivially first
        let chan = ChannelId::new(0);
        st.set_global(nets[0], Vec::new(), None, vec![(chan, 0, 1)], vec![chan]);
        st.rip_up_cell(&nl, cell);
        for n in nets {
            assert_eq!(st.net_state(n), NetRouteState::Unrouted);
            assert!(st.ug().any(|x| x == n));
        }
    }
}

impl RoutingState {
    /// Wire utilization of one channel: `(used, total)` column-units of
    /// horizontal segment claimed vs. available. Used by congestion reports
    /// and layout rendering.
    pub fn channel_wire_usage(&self, arch: &Architecture, channel: ChannelId) -> (usize, usize) {
        let mut total = 0usize;
        let mut used = 0usize;
        for track in arch.channel_tracks(channel) {
            for seg in track.segments() {
                total += seg.len();
                if self.hseg_owner(seg.id()).is_some() {
                    used += seg.len();
                }
            }
        }
        (used, total)
    }

    /// A per-channel wire utilization report, one line per channel.
    pub fn occupancy_report(&self, arch: &Architecture) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for c in 0..arch.geometry().num_channels() {
            let chan = ChannelId::new(c);
            let (used, total) = self.channel_wire_usage(arch, chan);
            let pct = (100 * used).checked_div(total).unwrap_or(0);
            let bars = pct / 5;
            let _ = writeln!(
                out,
                "{chan:<5} [{:<20}] {pct:>3}%  ({used}/{total} column-units)",
                "#".repeat(bars)
            );
        }
        out
    }
}

impl RoutingState {
    /// Exports every net's route as plain data, in net-id order — the
    /// routing half of a layout checkpoint.
    pub fn export_routes(&self) -> Vec<NetRouteSnapshot> {
        self.routes
            .iter()
            .map(NetRouteSnapshot::from_route)
            .collect()
    }

    /// Rebuilds a complete routing state from exported snapshots.
    ///
    /// Every index is bounds-checked against `arch` and every segment claim
    /// is checked for conflicts before any typed id is constructed, so a
    /// corrupt or hand-edited checkpoint yields a typed
    /// [`RouteRestoreError`] instead of a panic. Queue and counter
    /// bookkeeping (`U_G`, `U_D`, `incomplete`) is re-derived from the
    /// restored routes; full semantic validation against a placement is the
    /// job of [`verify_routing`](crate::verify_routing).
    ///
    /// # Errors
    ///
    /// Returns the first structural problem found: wrong net count, an
    /// out-of-range index, a double-claimed segment, or an unrouted net
    /// that still lists resources.
    pub fn restore(
        arch: &Architecture,
        netlist: &Netlist,
        snapshots: &[NetRouteSnapshot],
    ) -> Result<RoutingState, RouteRestoreError> {
        if snapshots.len() != netlist.num_nets() {
            return Err(RouteRestoreError::WrongNetCount {
                found: snapshots.len(),
                expected: netlist.num_nets(),
            });
        }
        let num_channels = arch.geometry().num_channels();
        let mut st = RoutingState::new(arch, netlist);
        for (i, snap) in snapshots.iter().enumerate() {
            if !snap.globally_routed {
                if !snap.vsegs.is_empty()
                    || !snap.hsegs.is_empty()
                    || !snap.pending_channels.is_empty()
                    || !snap.spans.is_empty()
                    || snap.vcol.is_some()
                {
                    return Err(RouteRestoreError::UnroutedHoldsResources { net: i });
                }
                continue;
            }
            // Bounds.
            if let Some(col) = snap.vcol {
                if col >= arch.geometry().num_cols() {
                    return Err(RouteRestoreError::IndexOutOfRange {
                        net: i,
                        detail: format!("feedthrough column {col}"),
                    });
                }
            }
            for &v in &snap.vsegs {
                if v >= arch.num_vsegs() {
                    return Err(RouteRestoreError::IndexOutOfRange {
                        net: i,
                        detail: format!("vertical segment {v}"),
                    });
                }
            }
            for (c, segs) in &snap.hsegs {
                if *c >= num_channels {
                    return Err(RouteRestoreError::IndexOutOfRange {
                        net: i,
                        detail: format!("routed channel {c}"),
                    });
                }
                for &h in segs {
                    if h >= arch.num_hsegs() {
                        return Err(RouteRestoreError::IndexOutOfRange {
                            net: i,
                            detail: format!("horizontal segment {h}"),
                        });
                    }
                }
            }
            for c in snap
                .pending_channels
                .iter()
                .copied()
                .chain(snap.spans.iter().map(|s| s.0))
            {
                if c >= num_channels {
                    return Err(RouteRestoreError::IndexOutOfRange {
                        net: i,
                        detail: format!("channel {c}"),
                    });
                }
            }
            // Checked claiming: a second claim of the same segment (by this
            // or any earlier net) is a conflict, never a panic.
            let net = NetId::new(i);
            for &v in &snap.vsegs {
                if let Some(prev) = st.vseg_owner[v] {
                    return Err(RouteRestoreError::SegmentConflict {
                        net: i,
                        detail: format!("vertical segment {v} already owned by {prev}"),
                    });
                }
                st.vseg_owner[v] = Some(net);
            }
            for (_, segs) in &snap.hsegs {
                for &h in segs {
                    if let Some(prev) = st.hseg_owner[h] {
                        return Err(RouteRestoreError::SegmentConflict {
                            net: i,
                            detail: format!("horizontal segment {h} already owned by {prev}"),
                        });
                    }
                    st.hseg_owner[h] = Some(net);
                }
            }
            // Install the route and re-derive queue/counter bookkeeping,
            // preserving record order exactly (pending-channel order is
            // part of the deterministic resume contract).
            let route = snap.to_route();
            st.ug.remove(&net);
            for c in &route.pending_channels {
                st.ud[c.index()].insert(net);
            }
            if route.state() == NetRouteState::Detailed {
                st.incomplete -= 1;
            }
            st.routes[i] = route;
        }
        Ok(st)
    }
}

/// Deterministic corruption hooks for the resilience layer's fault-injection
/// tests. Compiled only with the `fault-inject` feature; never called by
/// production code.
#[cfg(feature = "fault-inject")]
impl RoutingState {
    /// Clears the owner entry of the `nth` claimed horizontal segment
    /// (counting claimed entries in index order) *without* touching the
    /// route that lists it — the classic incremental-update divergence.
    /// Returns `false` if fewer than `nth + 1` segments are claimed.
    pub fn fault_clear_hseg_owner(&mut self, nth: usize) -> bool {
        let Some(idx) = self
            .hseg_owner
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_some())
            .map(|(i, _)| i)
            .nth(nth)
        else {
            return false;
        };
        self.hseg_owner[idx] = None;
        true
    }

    /// Skews the `incomplete` counter by one — a silent bookkeeping drift.
    pub fn fault_skew_incomplete(&mut self) {
        self.incomplete += 1;
    }

    /// Pops the last segment of the `nth` non-empty horizontal run (counting
    /// runs across nets in id order), clearing its owner entry too, so the
    /// run no longer covers its span. Returns `false` if there is no such
    /// run.
    pub fn fault_truncate_run(&mut self, nth: usize) -> bool {
        let mut seen = 0usize;
        for route in &mut self.routes {
            for (_, segs) in &mut route.hsegs {
                if segs.is_empty() {
                    continue;
                }
                if seen == nth {
                    let h = segs.pop().expect("non-empty run");
                    self.hseg_owner[h.index()] = None;
                    return true;
                }
                seen += 1;
            }
        }
        false
    }
}

#[cfg(test)]
mod usage_tests {
    use super::*;
    use rowfpga_netlist::{generate, GenerateConfig};
    use rowfpga_place::Placement;

    #[test]
    fn wire_usage_tracks_claims() {
        let nl = generate(&GenerateConfig {
            num_cells: 30,
            num_inputs: 4,
            num_outputs: 4,
            num_seq: 2,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(4)
            .cols(10)
            .io_columns(1)
            .tracks_per_channel(12)
            .build()
            .unwrap();
        let p = Placement::random(&arch, &nl, 5).unwrap();
        let mut st = RoutingState::new(&arch, &nl);
        let chan = ChannelId::new(0);
        let (used0, total) = st.channel_wire_usage(&arch, chan);
        assert_eq!(used0, 0);
        assert_eq!(total, 12 * 10);
        crate::batch::route_batch(
            &mut st,
            &arch,
            &nl,
            &p,
            &crate::config::RouterConfig::default(),
            4,
        );
        let summed: usize = (0..arch.geometry().num_channels())
            .map(|c| st.channel_wire_usage(&arch, ChannelId::new(c)).0)
            .sum();
        let claimed: usize = (0..arch.num_hsegs())
            .filter(|i| st.hseg_owner(rowfpga_arch::HSegId::new(*i)).is_some())
            .map(|i| arch.hseg(rowfpga_arch::HSegId::new(i)).len())
            .sum();
        assert_eq!(summed, claimed);
        let report = st.occupancy_report(&arch);
        assert_eq!(report.lines().count(), 5);
        assert!(report.contains('%'));
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;
    use crate::verify::verify_routing;
    use rowfpga_netlist::{generate, GenerateConfig};
    use rowfpga_place::Placement;

    fn routed_fixture() -> (Architecture, Netlist, Placement, RoutingState) {
        let nl = generate(&GenerateConfig {
            num_cells: 50,
            num_inputs: 6,
            num_outputs: 6,
            num_seq: 3,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(5)
            .cols(14)
            .io_columns(2)
            .tracks_per_channel(16)
            .build()
            .unwrap();
        let p = Placement::random(&arch, &nl, 17).unwrap();
        let mut st = RoutingState::new(&arch, &nl);
        crate::batch::route_batch(
            &mut st,
            &arch,
            &nl,
            &p,
            &crate::config::RouterConfig::default(),
            4,
        );
        (arch, nl, p, st)
    }

    #[test]
    fn export_restore_round_trips_and_verifies() {
        let (arch, nl, p, st) = routed_fixture();
        let snaps = st.export_routes();
        let restored = RoutingState::restore(&arch, &nl, &snaps).unwrap();
        assert_eq!(restored.export_routes(), snaps);
        assert_eq!(restored.incomplete(), st.incomplete());
        assert_eq!(restored.globally_unrouted(), st.globally_unrouted());
        for i in 0..arch.num_hsegs() {
            let id = HSegId::new(i);
            assert_eq!(restored.hseg_owner(id), st.hseg_owner(id));
        }
        for i in 0..arch.num_vsegs() {
            let id = VSegId::new(i);
            assert_eq!(restored.vseg_owner(id), st.vseg_owner(id));
        }
        verify_routing(&restored, &arch, &nl, &p).unwrap();
    }

    #[test]
    fn restore_rejects_malformed_snapshots() {
        let (arch, nl, _, st) = routed_fixture();
        let snaps = st.export_routes();

        assert!(matches!(
            RoutingState::restore(&arch, &nl, &snaps[1..]),
            Err(RouteRestoreError::WrongNetCount { .. })
        ));

        let mut oob = snaps.clone();
        let routed = oob
            .iter()
            .position(|s| !s.hsegs.is_empty())
            .expect("some net detail-routed");
        oob[routed].hsegs[0].1[0] = arch.num_hsegs();
        assert!(matches!(
            RoutingState::restore(&arch, &nl, &oob),
            Err(RouteRestoreError::IndexOutOfRange { .. })
        ));

        let mut dup = snaps.clone();
        let seg = dup[routed].hsegs[0].1[0];
        let other = dup
            .iter()
            .position(|s| !s.globally_routed)
            .unwrap_or_else(|| (routed + 1) % dup.len());
        dup[other] = dup[routed].clone();
        let _ = seg;
        assert!(matches!(
            RoutingState::restore(&arch, &nl, &dup),
            Err(RouteRestoreError::SegmentConflict { .. })
        ));

        let mut bad = snaps.clone();
        bad[routed].globally_routed = false;
        assert!(matches!(
            RoutingState::restore(&arch, &nl, &bad),
            Err(RouteRestoreError::UnroutedHoldsResources { .. })
        ));
    }
}
