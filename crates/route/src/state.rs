//! The mutable routing state: segment occupancy, per-net routes and the
//! unrouted-net queues, with transactional undo.
//!
//! The transaction machinery is built for the annealer's move loop, where
//! it runs once per proposed move: a flat, generation-stamped undo log
//! (first touch of a net moves or copies its prior route into two parallel
//! arrays) replaces a keyed journal, routes are edited in place with
//! copy-on-first-touch, and retired `NetRoute` shells and horizontal-run
//! vectors are recycled through small pools so steady-state operation does
//! not allocate.

use rowfpga_arch::{Architecture, ChannelId, ColId, HSegId, VSegId};
use rowfpga_netlist::{CellId, NetId, Netlist};

use crate::flatset::DenseSet;
use crate::route::{NetRoute, NetRouteState};
use crate::snapshot::{NetRouteSnapshot, RouteRestoreError};
use crate::spans::NetRequirements;

/// Generation-stamped undo log: the first mutation of a net inside a
/// transaction records `(net, prior route)` in two parallel arrays; the
/// stamp array makes the first-touch test O(1) without clearing anything
/// between transactions.
#[derive(Clone, Debug)]
struct UndoLog {
    active: bool,
    generation: u64,
    stamp: Vec<u64>,
    touched: Vec<NetId>,
    saved: Vec<NetRoute>,
}

/// Recycled allocations: cleared [`NetRoute`] shells and horizontal-run
/// vectors, harvested whenever a route is discarded.
#[derive(Clone, Debug, Default)]
struct RoutePool {
    shells: Vec<NetRoute>,
    runs: Vec<Vec<HSegId>>,
}

const SHELL_POOL_CAP: usize = 64;
const RUN_POOL_CAP: usize = 256;

/// Reusable buffers for the routing passes (queues, channel work lists).
/// Taken with `mem::take` for the duration of a pass and put back after,
/// so the passes allocate nothing in steady state.
#[derive(Clone, Debug, Default)]
pub(crate) struct PassScratch {
    /// Dirty-channel work list of the detailed pass.
    pub channels: Vec<ChannelId>,
    /// Per-channel detail queue: `(net, span_lo, span_hi)`.
    pub dqueue: Vec<(NetId, u32, u32)>,
    /// Global queue: `(net, requirements)`; requirement records are reused
    /// slot-by-slot across passes.
    pub gqueue: Vec<(NetId, NetRequirements)>,
}

/// Monotonic change counters for skipping doomed routing retries.
///
/// A failed routing attempt has no side effects, and its outcome is a
/// deterministic function of segment occupancy (plus the net's span
/// requirements, which cannot change while the net stays queued: any route
/// or placement change re-enqueues it, clearing its stamp). So a failure
/// observed at counter value `c` is guaranteed to repeat while the counter
/// still reads `c` — the passes record the counter alongside each failure
/// and skip the retry until relevant state has actually changed. Counters
/// start at 1 and stamps at 0, so nothing is skipped before its first
/// attempt; stale stamps can only cause harmless extra retries, never a
/// false skip.
#[derive(Clone, Debug)]
struct RetryStamps {
    /// Per-channel counter, bumped whenever a horizontal segment of the
    /// channel is *released*. Claims deliberately do not bump it: a failed
    /// track scan means every feasible track is blocked, a condition
    /// claims can only preserve.
    chan_mod: Vec<u64>,
    /// Per-channel counter, bumped whenever a net enters the channel's
    /// `U_D` queue (departures cannot un-doom the remaining members).
    chan_queue_gen: Vec<u64>,
    /// `(chan_mod, chan_queue_gen)` observed when a detail pass last left
    /// the channel with failures; `(0, 0)` = attempt normally.
    chan_attempt: Vec<(u64, u64)>,
    /// Logical clock of vertical-segment *releases*, bumped once per
    /// release batch. Claims deliberately do not advance it: the greedy
    /// chain search is a complete interval-covering search, so its failure
    /// means no chain exists — a condition claims can only preserve.
    vtick: u64,
    /// Per-channel `vtick` of the last vertical-segment release whose span
    /// covers the channel. A failed chain search is a function of exactly
    /// the vertical segments intersecting the net's channel range, so
    /// these localize invalidation to that range.
    vchan_mod: Vec<u64>,
    /// Per-(column, channel) greedy-step table for the *first* chain
    /// segment: the free segment the greedy scan would pick to tap channel
    /// `c` (`lo <= c <= hi`, first-in-order max-`hi`), as `(hi, seg)` with
    /// `seg == u32::MAX` for "none". Flat `col × num_channels` grid. Kept
    /// exactly consistent with ownership, it turns each greedy step of the
    /// chain search into one table lookup.
    best_cov: Vec<(u16, u32)>,
    /// Per-(column, reach) greedy-step table for *later* chain segments:
    /// the free segment extending reach `r` (`lo <= r < hi`, first-in-order
    /// max-`hi`), same encoding as `best_cov`.
    best_ext: Vec<(u16, u32)>,
    /// CSR offsets into `vcol_segs`, one slice per column.
    vcol_start: Vec<u32>,
    /// Vertical segment ids per column, in the architecture's scan order —
    /// the order the greedy scan visits and breaks ties by.
    vcol_segs: Vec<u32>,
    /// Per-vseg position within its column's scan order, for tie breaks.
    vord: Vec<u32>,
    /// Per-net `vtick` captured *before* the net's last failed global
    /// attempt; 0 = attempt normally. Cleared whenever the net's route
    /// changes (its requirements may differ after the move that ripped it).
    global_fail: Vec<u64>,
    /// The `(chan_min, chan_max)` requirement range at the net's last
    /// failed global attempt, valid while its `global_fail` stamp is.
    global_fail_range: Vec<(u32, u32)>,
    /// Per-vseg `(col, chan_lo, chan_hi)`, for maintaining `vchan_mod` and
    /// the greedy-step tables from ownership edits without consulting
    /// the architecture.
    vseg_span: Vec<(u32, u32, u32)>,
    /// Channel count, for indexing the greedy-step tables.
    num_channels: u32,
    /// Logical clock of horizontal-segment *releases*, bumped once per
    /// release batch. Claims deliberately do not advance it: a failed
    /// track scan means every feasible track is blocked, a condition
    /// claims can only preserve.
    htick: u64,
    /// Per-(channel, column) `htick` of the last horizontal-segment
    /// release covering the column (flat `channel × num_cols` grid). A
    /// failed track scan for a span is a function of exactly the channel's
    /// segments intersecting that span's columns.
    hcol_mod: Vec<u64>,
    /// Per-(channel, net) `htick` at the pair's last failed detail attempt
    /// (flat `channel × num_nets` grid); 0 = attempt normally. Cleared when
    /// the net re-enters the channel's `U_D` (its span may have changed).
    detail_fail: Vec<u64>,
    /// Per-hseg `(channel, start_col, end_col)`, end exclusive, for bumping
    /// `hcol_mod` from ownership edits.
    hseg_span: Vec<(u32, u32, u32)>,
    /// Column count, for indexing the `hcol_mod` grid.
    num_cols: u32,
    /// Net count, for indexing the `detail_fail` grid.
    num_nets: u32,
}

impl RetryStamps {
    fn new(arch: &Architecture, num_nets: usize) -> RetryStamps {
        let num_channels = arch.geometry().num_channels();
        let num_cols = arch.geometry().num_cols();
        let vseg_span: Vec<(u32, u32, u32)> = (0..arch.num_vsegs())
            .map(|i| {
                let s = arch.vseg(VSegId::new(i));
                (
                    s.col().index() as u32,
                    s.chan_lo().index() as u32,
                    s.chan_hi().index() as u32,
                )
            })
            .collect();
        let mut vcol_start = vec![0u32; num_cols + 1];
        let mut vcol_segs = Vec::with_capacity(arch.num_vsegs());
        let mut vord = vec![0u32; arch.num_vsegs()];
        for col in 0..num_cols {
            for (k, s) in arch.vsegs_at(ColId::new(col)).iter().enumerate() {
                vord[s.id().index()] = k as u32;
                vcol_segs.push(s.id().index() as u32);
            }
            vcol_start[col + 1] = vcol_segs.len() as u32;
        }
        // All segments start free; applying the first-in-order max-`hi`
        // rule in scan order reproduces the greedy scan's pick exactly.
        let mut best_cov = vec![(0u16, u32::MAX); num_cols * num_channels];
        let mut best_ext = vec![(0u16, u32::MAX); num_cols * num_channels];
        for col in 0..num_cols {
            let base = col * num_channels;
            let (s, e) = (vcol_start[col] as usize, vcol_start[col + 1] as usize);
            for &v in &vcol_segs[s..e] {
                let (_, lo, hi) = vseg_span[v as usize];
                for c in lo..=hi {
                    let cur = &mut best_cov[base + c as usize];
                    if cur.1 == u32::MAX || hi as u16 > cur.0 {
                        *cur = (hi as u16, v);
                    }
                }
                for r in lo..hi {
                    let cur = &mut best_ext[base + r as usize];
                    if cur.1 == u32::MAX || hi as u16 > cur.0 {
                        *cur = (hi as u16, v);
                    }
                }
            }
        }
        let mut hseg_span = vec![(0, 0, 0); arch.num_hsegs()];
        for c in 0..num_channels {
            for track in arch.channel_tracks(ChannelId::new(c)) {
                for s in track.segments() {
                    hseg_span[s.id().index()] = (c as u32, s.start() as u32, s.end() as u32);
                }
            }
        }
        RetryStamps {
            chan_mod: vec![1; num_channels],
            chan_queue_gen: vec![1; num_channels],
            chan_attempt: vec![(0, 0); num_channels],
            vtick: 1,
            vchan_mod: vec![1; num_channels],
            best_cov,
            best_ext,
            vcol_start,
            vcol_segs,
            vord,
            global_fail: vec![0; num_nets],
            global_fail_range: vec![(0, 0); num_nets],
            vseg_span,
            num_channels: num_channels as u32,
            htick: 1,
            hcol_mod: vec![1; num_channels * num_cols],
            detail_fail: vec![0; num_channels * num_nets],
            hseg_span,
            num_cols: num_cols as u32,
            num_nets: num_nets as u32,
        }
    }

    /// Records the release of `vseg`: stamps its covered channels with a
    /// fresh tick and offers it back to the greedy-step tables (it becomes
    /// the pick of any row it beats under the first-in-order max-`hi`
    /// rule).
    fn free_vseg(&mut self, vseg: usize) {
        let (col, lo, hi) = self.vseg_span[vseg];
        let base = col as usize * self.num_channels as usize;
        let ord = self.vord[vseg];
        for c in lo..=hi {
            self.vchan_mod[c as usize] = self.vtick;
            self.offer(true, base + c as usize, hi as u16, vseg as u32, ord);
        }
        for r in lo..hi {
            self.offer(false, base + r as usize, hi as u16, vseg as u32, ord);
        }
    }

    /// Offers a newly freed segment to one greedy-step table row,
    /// installing it iff the greedy scan would now pick it: strictly
    /// larger `hi`, or equal `hi` and earlier in scan order.
    fn offer(&mut self, cov: bool, idx: usize, hi: u16, v: u32, ord: u32) {
        let cur = if cov {
            self.best_cov[idx]
        } else {
            self.best_ext[idx]
        };
        if cur.1 == u32::MAX || hi > cur.0 || (hi == cur.0 && ord < self.vord[cur.1 as usize]) {
            if cov {
                self.best_cov[idx] = (hi, v);
            } else {
                self.best_ext[idx] = (hi, v);
            }
        }
    }

    /// Records the claim of `vseg`: every greedy-step table row whose pick
    /// it was is rescanned from the column's segment list (claims never
    /// invalidate failure stamps — they only shrink feasibility).
    fn claim_vseg(&mut self, vseg: usize, owners: &[Option<NetId>]) {
        let (col, lo, hi) = self.vseg_span[vseg];
        let base = col as usize * self.num_channels as usize;
        for c in lo..=hi {
            if self.best_cov[base + c as usize].1 == vseg as u32 {
                self.rescan(true, col as usize, c as usize, owners);
            }
        }
        for r in lo..hi {
            if self.best_ext[base + r as usize].1 == vseg as u32 {
                self.rescan(false, col as usize, r as usize, owners);
            }
        }
    }

    /// Recomputes one greedy-step table row by replaying the greedy scan
    /// over the column's free segments.
    fn rescan(&mut self, cov: bool, col: usize, row: usize, owners: &[Option<NetId>]) {
        let mut best = (0u16, u32::MAX);
        let (s, e) = (
            self.vcol_start[col] as usize,
            self.vcol_start[col + 1] as usize,
        );
        for &v in &self.vcol_segs[s..e] {
            if owners[v as usize].is_some() {
                continue;
            }
            let (_, lo, hi) = self.vseg_span[v as usize];
            let eligible = if cov {
                lo as usize <= row && hi as usize >= row
            } else {
                lo as usize <= row && hi as usize > row
            };
            if eligible && (best.1 == u32::MAX || hi as u16 > best.0) {
                best = (hi as u16, v);
            }
        }
        let idx = col * self.num_channels as usize + row;
        if cov {
            self.best_cov[idx] = best;
        } else {
            self.best_ext[idx] = best;
        }
    }

    /// Stamps every (channel, column) covered by `hseg` with a fresh tick.
    fn touch_hseg(&mut self, hseg: usize) {
        let (c, s, e) = self.hseg_span[hseg];
        let base = c as usize * self.num_cols as usize;
        for col in s..e {
            self.hcol_mod[base + col as usize] = self.htick;
        }
    }
}

/// The complete routing disposition of a layout in progress.
///
/// Invariants maintained by every mutation:
///
/// * a segment's owner is exactly the net whose [`NetRoute`] lists it;
/// * the global queue `U_G` holds exactly the nets without a global routing
///   decision ([`NetRoute::is_globally_routed`] is false);
/// * the channel queue `U_D(R)` holds exactly the nets with `R` in their
///   [`NetRoute::pending_channels`], and the dirty-channel set holds
///   exactly the channels whose `U_D` is non-empty;
/// * [`RoutingState::incomplete`] equals the number of nets whose state is
///   not [`NetRouteState::Detailed`] (the paper's `D` cost term), and
///   [`RoutingState::globally_unrouted`] equals `|U_G|` (the `G` term).
#[derive(Clone, Debug)]
pub struct RoutingState {
    hseg_owner: Vec<Option<NetId>>,
    vseg_owner: Vec<Option<NetId>>,
    routes: Vec<NetRoute>,
    ug: DenseSet,
    ud: Vec<DenseSet>,
    dirty: DenseSet,
    incomplete: usize,
    undo: UndoLog,
    pool: RoutePool,
    retry: RetryStamps,
    pub(crate) scratch: PassScratch,
}

impl RoutingState {
    /// Creates the all-unrouted state: every net queued in `U_G`.
    pub fn new(arch: &Architecture, netlist: &Netlist) -> RoutingState {
        let num_channels = arch.geometry().num_channels();
        RoutingState {
            hseg_owner: vec![None; arch.num_hsegs()],
            vseg_owner: vec![None; arch.num_vsegs()],
            routes: vec![NetRoute::default(); netlist.num_nets()],
            ug: DenseSet::full(netlist.num_nets()),
            ud: (0..num_channels)
                .map(|_| DenseSet::new(netlist.num_nets()))
                .collect(),
            dirty: DenseSet::new(num_channels),
            incomplete: netlist.num_nets(),
            undo: UndoLog {
                active: false,
                generation: 0,
                stamp: vec![0; netlist.num_nets()],
                touched: Vec::new(),
                saved: Vec::new(),
            },
            pool: RoutePool::default(),
            retry: RetryStamps::new(arch, netlist.num_nets()),
            scratch: PassScratch::default(),
        }
    }

    /// The route record of `net`.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn route(&self, net: NetId) -> &NetRoute {
        &self.routes[net.index()]
    }

    /// The routing state of `net`.
    pub fn net_state(&self, net: NetId) -> NetRouteState {
        self.routes[net.index()].state()
    }

    /// The owner of a horizontal segment.
    pub fn hseg_owner(&self, seg: HSegId) -> Option<NetId> {
        self.hseg_owner[seg.index()]
    }

    /// The owner of a vertical segment.
    pub fn vseg_owner(&self, seg: VSegId) -> Option<NetId> {
        self.vseg_owner[seg.index()]
    }

    /// Number of globally unrouted nets — the cost term `G` (paper §3.3).
    pub fn globally_unrouted(&self) -> usize {
        self.ug.len()
    }

    /// Number of nets lacking a complete detailed routing — the cost term
    /// `D` (paper §3.4). Globally unrouted nets count here too: a net that
    /// cannot be globally routed automatically cannot be detail routed.
    pub fn incomplete(&self) -> usize {
        self.incomplete
    }

    /// Whether every net is fully routed.
    pub fn is_fully_routed(&self) -> bool {
        self.incomplete == 0
    }

    /// The globally unrouted nets, in unspecified order. Consumers that
    /// need determinism impose their own total order (the global pass sorts
    /// longest-first with an id tiebreak).
    pub fn ug(&self) -> impl Iterator<Item = NetId> + '_ {
        self.ug.iter().map(NetId::new)
    }

    /// The detail-unrouted nets of one channel, in unspecified order (see
    /// [`RoutingState::ug`] on determinism).
    pub fn ud(&self, channel: ChannelId) -> impl Iterator<Item = NetId> + '_ {
        self.ud[channel.index()].iter().map(NetId::new)
    }

    /// Channels whose `U_D` queue is non-empty, in unspecified order — a
    /// live view over the persistent dirty-channel set, so iterating
    /// allocates nothing. Channel processing order never affects results:
    /// horizontal resources are disjoint between channels.
    pub fn dirty_channels(&self) -> impl Iterator<Item = ChannelId> + '_ {
        self.dirty.iter().map(ChannelId::new)
    }

    /// Starts journaling mutations so that [`RoutingState::rollback`] can
    /// restore the current state exactly.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is already active.
    pub fn begin_txn(&mut self) {
        assert!(!self.undo.active, "routing transaction already active");
        debug_assert!(self.undo.touched.is_empty() && self.undo.saved.is_empty());
        self.undo.active = true;
        self.undo.generation += 1;
    }

    /// Discards the undo log, making all mutations since
    /// [`RoutingState::begin_txn`] permanent.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active.
    pub fn commit(&mut self) {
        assert!(self.undo.active, "no routing transaction to commit");
        self.undo.active = false;
        self.undo.touched.clear();
        let mut saved = std::mem::take(&mut self.undo.saved);
        for route in saved.drain(..) {
            self.recycle_route(route);
        }
        self.undo.saved = saved;
    }

    /// Restores the state to the instant of [`RoutingState::begin_txn`].
    ///
    /// # Panics
    ///
    /// Panics if no transaction is active.
    pub fn rollback(&mut self) {
        assert!(self.undo.active, "no routing transaction to roll back");
        self.undo.active = false;
        let mut touched = std::mem::take(&mut self.undo.touched);
        let mut saved = std::mem::take(&mut self.undo.saved);
        // Phase 1: strip the current routes of every touched net, freeing
        // their segments and queue memberships. Two phases are required
        // because a segment freed from one net during the transaction may
        // currently be held by another touched net.
        for &net in &touched {
            let route = std::mem::take(&mut self.routes[net.index()]);
            self.release_segments(net, &route);
            self.update_queues(net, &route, &NetRoute::default());
            if route.state() == NetRouteState::Detailed {
                self.incomplete += 1;
            }
            self.recycle_route(route);
        }
        // Phase 2: reinstate the saved routes.
        for (&net, route) in touched.iter().zip(saved.drain(..)) {
            self.claim_segments(net, &route);
            self.update_queues(net, &NetRoute::default(), &route);
            if route.state() == NetRouteState::Detailed {
                self.incomplete -= 1;
            }
            self.routes[net.index()] = route;
        }
        touched.clear();
        self.undo.touched = touched;
        self.undo.saved = saved;
    }

    /// Whether a transaction is active.
    pub fn txn_active(&self) -> bool {
        self.undo.active
    }

    /// The nets whose routes have changed since [`RoutingState::begin_txn`],
    /// in first-touch order — a view over the undo log, so calling this
    /// allocates nothing. Layout engines use this as the exact set whose
    /// delays must be refreshed after the reroute cascade; the incremental
    /// timing update is order-independent, so first-touch order is as good
    /// as sorted. Empty when no transaction is active.
    pub fn touched_nets(&self) -> &[NetId] {
        if self.undo.active {
            &self.undo.touched
        } else {
            &[]
        }
    }

    /// Rips up `net`: frees its vertical and horizontal segments and
    /// re-queues it in `U_G` (paper §3.3: a moved cell's nets lose both
    /// their global and detailed routing).
    pub fn rip_up(&mut self, net: NetId) {
        self.set_route(net, NetRoute::default());
    }

    /// Rips up every net connected to `cell`.
    pub fn rip_up_cell(&mut self, netlist: &Netlist, cell: CellId) {
        for net in netlist.nets_of_cell(cell) {
            self.rip_up(net);
        }
    }

    /// A cleared horizontal-run vector from the pool (or a fresh one).
    pub(crate) fn take_run(&mut self) -> Vec<HSegId> {
        self.pool.runs.pop().unwrap_or_default()
    }

    /// A cleared [`NetRoute`] shell from the pool (or a fresh one).
    pub(crate) fn take_shell(&mut self) -> NetRoute {
        self.pool.shells.pop().unwrap_or_default()
    }

    /// Returns an unused shell (e.g. from a failed global-routing attempt)
    /// to the pool.
    pub(crate) fn give_back_shell(&mut self, shell: NetRoute) {
        self.recycle_route(shell);
    }

    /// Retires a route, harvesting its allocations into the pools.
    fn recycle_route(&mut self, mut route: NetRoute) {
        for (_, mut segs) in route.hsegs.drain(..) {
            if self.pool.runs.len() < RUN_POOL_CAP {
                segs.clear();
                self.pool.runs.push(segs);
            }
        }
        if self.pool.shells.len() < SHELL_POOL_CAP {
            route.vsegs.clear();
            route.vcol = None;
            route.pending_channels.clear();
            route.spans.clear();
            route.globally_routed = false;
            self.pool.shells.push(route);
        }
    }

    /// Records `net` in the undo log if this is its first touch in the
    /// active transaction, *copying* its current route (used by the
    /// in-place edit path, where the route is about to be modified rather
    /// than replaced). No-op outside a transaction.
    fn save_first_touch_clone(&mut self, net: NetId) {
        if !self.undo.active {
            return;
        }
        let i = net.index();
        if self.undo.stamp[i] == self.undo.generation {
            return;
        }
        self.undo.stamp[i] = self.undo.generation;
        self.undo.touched.push(net);
        let src = &self.routes[i];
        let mut shell = self.pool.shells.pop().unwrap_or_default();
        shell.vsegs.clear();
        shell.vsegs.extend_from_slice(&src.vsegs);
        shell.vcol = src.vcol;
        shell.pending_channels.clear();
        shell
            .pending_channels
            .extend_from_slice(&src.pending_channels);
        shell.spans.clear();
        shell.spans.extend_from_slice(&src.spans);
        shell.globally_routed = src.globally_routed;
        for (_, mut segs) in shell.hsegs.drain(..) {
            if self.pool.runs.len() < RUN_POOL_CAP {
                segs.clear();
                self.pool.runs.push(segs);
            }
        }
        let src = &self.routes[i];
        for (c, run) in &src.hsegs {
            let mut v = self.pool.runs.pop().unwrap_or_default();
            v.extend_from_slice(run);
            shell.hsegs.push((*c, v));
        }
        self.undo.saved.push(shell);
    }

    /// Installs a global routing decision for `net`: the vertical chain (or
    /// the trivial empty chain for single-channel nets), the per-channel
    /// spans and the channels awaiting detailed routing, carried in a
    /// filled-in route shell.
    pub(crate) fn set_global(&mut self, net: NetId, shell: NetRoute) {
        debug_assert!(
            !self.routes[net.index()].globally_routed,
            "net must be ripped up before global rerouting"
        );
        debug_assert!(shell.globally_routed && shell.hsegs.is_empty());
        self.set_route(net, shell);
    }

    /// Records a successful detailed routing of `net` in `channel`, editing
    /// the route in place (copy-on-first-touch into the undo log replaces
    /// the full-route clone this operation used to pay).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the channel is not pending for the net.
    pub(crate) fn set_channel_routed(&mut self, net: NetId, channel: ChannelId, segs: Vec<HSegId>) {
        self.save_first_touch_clone(net);
        let i = net.index();
        {
            let route = &mut self.routes[i];
            let pos = route
                .pending_channels
                .iter()
                .position(|c| *c == channel)
                .expect("channel not pending for net");
            route.pending_channels.swap_remove(pos);
            debug_assert!(route.hsegs_in(channel).is_none());
        }
        for h in &segs {
            assert!(
                self.hseg_owner[h.index()].is_none(),
                "horizontal segment {h:?} already owned"
            );
            self.hseg_owner[h.index()] = Some(net);
        }
        let done = {
            let route = &mut self.routes[i];
            route.hsegs.push((channel, segs));
            route.state() == NetRouteState::Detailed
        };
        let ci = channel.index();
        self.ud[ci].remove(i);
        if self.ud[ci].is_empty() {
            self.dirty.remove(ci);
        }
        if done {
            self.incomplete -= 1;
        }
    }

    /// Replaces `net`'s route, maintaining ownership, queues, counters and
    /// the undo log.
    fn set_route(&mut self, net: NetId, new: NetRoute) {
        // Take the old route by value so ownership, queues and counters can
        // be updated without cloning either route; the old value then moves
        // into the undo log (first touch only) or back into the pools.
        let old = std::mem::take(&mut self.routes[net.index()]);
        self.release_segments(net, &old);
        self.claim_segments(net, &new);
        self.update_queues(net, &old, &new);
        let was_done = old.state() == NetRouteState::Detailed;
        let is_done = new.state() == NetRouteState::Detailed;
        match (was_done, is_done) {
            (false, true) => self.incomplete -= 1,
            (true, false) => self.incomplete += 1,
            _ => {}
        }
        self.routes[net.index()] = new;
        let i = net.index();
        if self.undo.active && self.undo.stamp[i] != self.undo.generation {
            self.undo.stamp[i] = self.undo.generation;
            self.undo.touched.push(net);
            self.undo.saved.push(old);
        } else {
            self.recycle_route(old);
        }
    }

    fn release_segments(&mut self, net: NetId, route: &NetRoute) {
        if !route.vsegs.is_empty() {
            self.retry.vtick += 1;
        }
        for v in &route.vsegs {
            debug_assert_eq!(self.vseg_owner[v.index()], Some(net));
            self.vseg_owner[v.index()] = None;
            self.retry.free_vseg(v.index());
        }
        if !route.hsegs.is_empty() {
            self.retry.htick += 1;
        }
        for (c, segs) in &route.hsegs {
            self.retry.chan_mod[c.index()] += 1;
            for h in segs {
                debug_assert_eq!(self.hseg_owner[h.index()], Some(net));
                self.hseg_owner[h.index()] = None;
                self.retry.touch_hseg(h.index());
            }
        }
    }

    fn claim_segments(&mut self, net: NetId, route: &NetRoute) {
        for v in &route.vsegs {
            assert!(
                self.vseg_owner[v.index()].is_none(),
                "vertical segment {v:?} already owned"
            );
            self.vseg_owner[v.index()] = Some(net);
            self.retry.claim_vseg(v.index(), &self.vseg_owner);
        }
        for (_, segs) in &route.hsegs {
            for h in segs {
                assert!(
                    self.hseg_owner[h.index()].is_none(),
                    "horizontal segment {h:?} already owned"
                );
                self.hseg_owner[h.index()] = Some(net);
            }
        }
    }

    fn update_queues(&mut self, net: NetId, old: &NetRoute, new: &NetRoute) {
        let i = net.index();
        self.retry.global_fail[i] = 0;
        match (old.globally_routed, new.globally_routed) {
            (true, false) => {
                self.ug.insert(i);
            }
            (false, true) => {
                self.ug.remove(i);
            }
            _ => {}
        }
        for c in &old.pending_channels {
            if !new.pending_channels.contains(c) {
                let ci = c.index();
                if self.ud[ci].remove(i) && self.ud[ci].is_empty() {
                    self.dirty.remove(ci);
                }
            }
        }
        for c in &new.pending_channels {
            if !old.pending_channels.contains(c) {
                let ci = c.index();
                if self.ud[ci].insert(i) {
                    self.dirty.insert(ci);
                }
                self.retry.chan_queue_gen[ci] += 1;
                self.retry.detail_fail[ci * self.retry.num_nets as usize + i] = 0;
            }
        }
    }

    /// The current retry-skip key of `channel`: changes whenever the
    /// channel's horizontal occupancy or `U_D` membership could have made a
    /// previously doomed detail attempt viable.
    pub(crate) fn detail_retry_key(&self, channel: ChannelId) -> (u64, u64) {
        let ci = channel.index();
        (self.retry.chan_mod[ci], self.retry.chan_queue_gen[ci])
    }

    /// The retry-skip key recorded at the channel's last failure-bearing
    /// detail pass, or `(0, 0)` if the channel must be attempted.
    pub(crate) fn detail_attempt(&self, channel: ChannelId) -> (u64, u64) {
        self.retry.chan_attempt[channel.index()]
    }

    /// Records the channel's current retry-skip key after a detail pass
    /// that left failures, arming the skip. Claims made *during* the pass
    /// are deliberately included in the recorded key: blocking is monotone
    /// in occupancy, so a (net, channel) pair that failed mid-pass is still
    /// blocked under the pass's final occupancy.
    pub(crate) fn record_detail_attempt(&mut self, channel: ChannelId) {
        let ci = channel.index();
        self.retry.chan_attempt[ci] = (self.retry.chan_mod[ci], self.retry.chan_queue_gen[ci]);
    }

    /// Number of nets queued in `channel`'s `U_D`.
    pub(crate) fn ud_len(&self, channel: ChannelId) -> usize {
        self.ud[channel.index()].len()
    }

    /// The current vertical-occupancy clock value.
    pub(crate) fn vtick(&self) -> u64 {
        self.retry.vtick
    }

    /// Whether `net`'s last failed global-routing attempt is guaranteed to
    /// repeat: no vertical segment intersecting the net's channel range has
    /// been *released* since the failure was observed. The chain search's
    /// outcome depends only on those segments (every candidate a greedy
    /// step can consider intersects the range); the greedy is a complete
    /// interval-covering search, so failure means no chain exists — a
    /// condition claims can only preserve — and a failed attempt has no
    /// side effects, so skipping it is bit-exact.
    pub(crate) fn global_retry_doomed(&self, net: NetId) -> bool {
        let stamp = self.retry.global_fail[net.index()];
        if stamp == 0 {
            return false;
        }
        let (lo, hi) = self.retry.global_fail_range[net.index()];
        self.retry.vchan_mod[lo as usize..=hi as usize]
            .iter()
            .all(|&m| m <= stamp)
    }

    /// Records a failed global-routing attempt of `net` over channel range
    /// `chan_min..=chan_max`, made when the release clock read `seen`
    /// (captured before the attempt; releases cannot happen mid-pass, so
    /// pre- and post-attempt values coincide).
    pub(crate) fn record_global_failure(
        &mut self,
        net: NetId,
        seen: u64,
        chan_min: usize,
        chan_max: usize,
    ) {
        self.retry.global_fail[net.index()] = seen;
        self.retry.global_fail_range[net.index()] = (chan_min as u32, chan_max as u32);
    }

    /// The free vertical segment the greedy chain search would pick as its
    /// *first* segment at `col` to tap channel `chan`, with the channel it
    /// reaches — one table lookup in place of the scan.
    pub(crate) fn best_cover(&self, col: usize, chan: usize) -> Option<(usize, VSegId)> {
        let (hi, v) = self.retry.best_cov[col * self.retry.num_channels as usize + chan];
        (v != u32::MAX).then(|| (hi as usize, VSegId::new(v as usize)))
    }

    /// The free vertical segment the greedy chain search would pick to
    /// extend reach `r` at `col`, with the channel it reaches.
    pub(crate) fn best_extend(&self, col: usize, r: usize) -> Option<(usize, VSegId)> {
        let (hi, v) = self.retry.best_ext[col * self.retry.num_channels as usize + r];
        (v != u32::MAX).then(|| (hi as usize, VSegId::new(v as usize)))
    }

    /// Whether the (net, channel) detail attempt over columns `lo..=hi` is
    /// guaranteed to repeat its last failure: no horizontal segment of the
    /// channel intersecting those columns has been *released* since. The
    /// track scan's outcome is a function of exactly those segments (a
    /// covering run's segments all intersect the span), and blocking is
    /// monotone in occupancy, so the post-failure stamp is exact.
    pub(crate) fn detail_retry_doomed(
        &self,
        net: NetId,
        channel: ChannelId,
        lo: usize,
        hi: usize,
    ) -> bool {
        let ci = channel.index();
        let stamp = self.retry.detail_fail[ci * self.retry.num_nets as usize + net.index()];
        if stamp == 0 {
            return false;
        }
        let base = ci * self.retry.num_cols as usize;
        self.retry.hcol_mod[base + lo..=base + hi]
            .iter()
            .all(|&m| m <= stamp)
    }

    /// Records a failed (net, channel) detail attempt at the current
    /// horizontal-occupancy clock.
    pub(crate) fn record_detail_failure(&mut self, net: NetId, channel: ChannelId) {
        let ci = channel.index();
        self.retry.detail_fail[ci * self.retry.num_nets as usize + net.index()] = self.retry.htick;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowfpga_arch::ColId;
    use rowfpga_netlist::{generate, GenerateConfig};

    fn setup() -> (Architecture, Netlist, RoutingState) {
        let nl = generate(&GenerateConfig {
            num_cells: 30,
            num_inputs: 4,
            num_outputs: 4,
            num_seq: 2,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(4)
            .cols(10)
            .io_columns(1)
            .build()
            .unwrap();
        let st = RoutingState::new(&arch, &nl);
        (arch, nl, st)
    }

    fn global_shell(
        st: &mut RoutingState,
        vsegs: Vec<VSegId>,
        vcol: Option<ColId>,
        spans: Vec<(ChannelId, u32, u32)>,
        pending: Vec<ChannelId>,
    ) -> NetRoute {
        let mut shell = st.take_shell();
        shell.vsegs = vsegs;
        shell.vcol = vcol;
        shell.spans = spans;
        shell.pending_channels = pending;
        shell.globally_routed = true;
        shell
    }

    #[test]
    fn initial_state_is_all_unrouted() {
        let (_, nl, st) = setup();
        assert_eq!(st.globally_unrouted(), nl.num_nets());
        assert_eq!(st.incomplete(), nl.num_nets());
        assert!(!st.is_fully_routed());
        assert!(st.dirty_channels().next().is_none());
        for (id, _) in nl.nets() {
            assert_eq!(st.net_state(id), NetRouteState::Unrouted);
        }
    }

    #[test]
    fn global_then_detailed_transitions_counters() {
        let (arch, nl, mut st) = setup();
        let net = NetId::new(0);
        let chan = ChannelId::new(1);
        let vseg = arch.vsegs_at(ColId::new(3))[0];
        assert!(vseg.reaches(chan));
        let shell = global_shell(
            &mut st,
            vec![vseg.id()],
            Some(ColId::new(3)),
            vec![(chan, 2, 5)],
            vec![chan],
        );
        st.set_global(net, shell);
        assert_eq!(st.net_state(net), NetRouteState::Global);
        assert_eq!(st.globally_unrouted(), nl.num_nets() - 1);
        assert_eq!(st.incomplete(), nl.num_nets());
        assert_eq!(st.dirty_channels().collect::<Vec<_>>(), vec![chan]);
        assert_eq!(st.vseg_owner(vseg.id()), Some(net));

        let hseg = arch.channel_tracks(chan)[0].segments()[0].id();
        st.set_channel_routed(net, chan, vec![hseg]);
        assert_eq!(st.net_state(net), NetRouteState::Detailed);
        assert_eq!(st.incomplete(), nl.num_nets() - 1);
        assert!(st.dirty_channels().next().is_none());
        assert_eq!(st.hseg_owner(hseg), Some(net));

        st.rip_up(net);
        assert_eq!(st.net_state(net), NetRouteState::Unrouted);
        assert_eq!(st.globally_unrouted(), nl.num_nets());
        assert_eq!(st.incomplete(), nl.num_nets());
        assert_eq!(st.vseg_owner(vseg.id()), None);
        assert_eq!(st.hseg_owner(hseg), None);
    }

    #[test]
    fn rollback_restores_routes_queues_and_ownership() {
        let (arch, _nl, mut st) = setup();
        let net_a = NetId::new(0);
        let net_b = NetId::new(1);
        let chan = ChannelId::new(0);
        let hseg = arch.channel_tracks(chan)[0].segments()[0].id();

        // Pre-transaction: net_a fully routed in channel 0.
        let shell = global_shell(&mut st, Vec::new(), None, vec![(chan, 0, 2)], vec![chan]);
        st.set_global(net_a, shell);
        st.set_channel_routed(net_a, chan, vec![hseg]);
        let g0 = st.globally_unrouted();
        let d0 = st.incomplete();

        // Transaction: rip up net_a, give its segment to net_b, then undo.
        st.begin_txn();
        st.rip_up(net_a);
        let shell = global_shell(&mut st, Vec::new(), None, vec![(chan, 0, 2)], vec![chan]);
        st.set_global(net_b, shell);
        st.set_channel_routed(net_b, chan, vec![hseg]);
        assert_eq!(st.hseg_owner(hseg), Some(net_b));
        st.rollback();

        assert_eq!(st.hseg_owner(hseg), Some(net_a));
        assert_eq!(st.net_state(net_a), NetRouteState::Detailed);
        assert_eq!(st.net_state(net_b), NetRouteState::Unrouted);
        assert_eq!(st.globally_unrouted(), g0);
        assert_eq!(st.incomplete(), d0);
        assert!(st.ug().any(|n| n == net_b));
        assert!(st.ud(chan).next().is_none());
    }

    #[test]
    fn commit_makes_changes_permanent() {
        let (arch, _nl, mut st) = setup();
        let net = NetId::new(2);
        let chan = ChannelId::new(0);
        let hseg = arch.channel_tracks(chan)[0].segments()[0].id();
        st.begin_txn();
        let shell = global_shell(&mut st, Vec::new(), None, vec![(chan, 0, 1)], vec![chan]);
        st.set_global(net, shell);
        st.set_channel_routed(net, chan, vec![hseg]);
        st.commit();
        assert!(!st.txn_active());
        assert_eq!(st.net_state(net), NetRouteState::Detailed);
        assert_eq!(st.hseg_owner(hseg), Some(net));
    }

    #[test]
    fn set_channel_routed_edits_in_place_and_journals_on_first_touch() {
        // The detail-commit path must not replace the whole route record:
        // spans and the vertical chain stay identical (same data), pending
        // channels shrink by exactly the routed channel, and a rollback
        // restores the exact prior record including pending-channel order.
        let (arch, _nl, mut st) = setup();
        let net = NetId::new(0);
        let (c0, c1) = (ChannelId::new(0), ChannelId::new(1));
        let vseg = arch.vsegs_at(ColId::new(3))[0];
        let shell = global_shell(
            &mut st,
            vec![vseg.id()],
            Some(ColId::new(3)),
            vec![(c0, 1, 3), (c1, 2, 5)],
            vec![c0, c1],
        );
        st.set_global(net, shell);
        let before = st.route(net).clone();

        st.begin_txn();
        let h0 = arch.channel_tracks(c0)[0].segments()[0].id();
        st.set_channel_routed(net, c0, vec![h0]);
        assert_eq!(st.touched_nets(), &[net]);
        {
            let r = st.route(net);
            assert_eq!(r.pending_channels(), &[c1], "c0 left pending (swap_remove)");
            assert_eq!(r.hsegs_in(c0), Some(&[h0][..]));
            assert_eq!(r.vsegs(), before.vsegs(), "vertical chain untouched");
            assert_eq!(
                r.spans().collect::<Vec<_>>(),
                before.spans().collect::<Vec<_>>(),
                "spans untouched"
            );
        }
        // Second touch of the same net in the same transaction must not
        // grow the undo log.
        let h1 = arch.channel_tracks(c1)[0].segments()[0].id();
        st.set_channel_routed(net, c1, vec![h1]);
        assert_eq!(st.touched_nets(), &[net]);
        assert_eq!(st.net_state(net), NetRouteState::Detailed);

        st.rollback();
        assert_eq!(st.route(net), &before, "rollback restores the exact record");
        assert_eq!(st.hseg_owner(h0), None);
        assert_eq!(st.hseg_owner(h1), None);
        assert_eq!(st.dirty_channels().count(), 2);
    }

    #[test]
    #[should_panic(expected = "already owned")]
    fn double_claim_is_detected() {
        let (arch, _nl, mut st) = setup();
        let chan = ChannelId::new(0);
        let hseg = arch.channel_tracks(chan)[0].segments()[0].id();
        let shell = global_shell(&mut st, Vec::new(), None, vec![(chan, 0, 1)], vec![chan]);
        st.set_global(NetId::new(0), shell);
        st.set_channel_routed(NetId::new(0), chan, vec![hseg]);
        let shell = global_shell(&mut st, Vec::new(), None, vec![(chan, 0, 1)], vec![chan]);
        st.set_global(NetId::new(1), shell);
        st.set_channel_routed(NetId::new(1), chan, vec![hseg]);
    }

    #[test]
    #[should_panic(expected = "transaction already active")]
    fn nested_transactions_are_rejected() {
        let (_, _, mut st) = setup();
        st.begin_txn();
        st.begin_txn();
    }

    #[test]
    fn rip_up_cell_requeues_all_its_nets() {
        let (_, nl, mut st) = setup();
        let (cell, _) = nl.cells().find(|(_, c)| !c.kind().is_io()).unwrap();
        let nets = nl.nets_of_cell(cell);
        assert!(!nets.is_empty());
        // route one of them trivially first
        let chan = ChannelId::new(0);
        let shell = global_shell(&mut st, Vec::new(), None, vec![(chan, 0, 1)], vec![chan]);
        st.set_global(nets[0], shell);
        st.rip_up_cell(&nl, cell);
        for n in nets {
            assert_eq!(st.net_state(n), NetRouteState::Unrouted);
            assert!(st.ug().any(|x| x == n));
        }
    }
}

impl RoutingState {
    /// Wire utilization of one channel: `(used, total)` column-units of
    /// horizontal segment claimed vs. available. Used by congestion reports
    /// and layout rendering.
    pub fn channel_wire_usage(&self, arch: &Architecture, channel: ChannelId) -> (usize, usize) {
        let mut total = 0usize;
        let mut used = 0usize;
        for track in arch.channel_tracks(channel) {
            for seg in track.segments() {
                total += seg.len();
                if self.hseg_owner(seg.id()).is_some() {
                    used += seg.len();
                }
            }
        }
        (used, total)
    }

    /// A per-channel wire utilization report, one line per channel.
    pub fn occupancy_report(&self, arch: &Architecture) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for c in 0..arch.geometry().num_channels() {
            let chan = ChannelId::new(c);
            let (used, total) = self.channel_wire_usage(arch, chan);
            let pct = (100 * used).checked_div(total).unwrap_or(0);
            let bars = pct / 5;
            let _ = writeln!(
                out,
                "{chan:<5} [{:<20}] {pct:>3}%  ({used}/{total} column-units)",
                "#".repeat(bars)
            );
        }
        out
    }
}

impl RoutingState {
    /// A 64-bit FNV-1a digest over the complete occupancy state: both
    /// segment-owner arrays plus the globally-unrouted and incomplete
    /// counters. Two states with equal digests hold (up to hash collision)
    /// identical segment ownership; the differential fuzzer uses this for
    /// cheap whole-state equality between an incremental state and a
    /// from-scratch rebuild.
    pub fn occupancy_digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        for owner in self.hseg_owner.iter().chain(self.vseg_owner.iter()) {
            eat(match owner {
                Some(net) => net.index() as u64 + 1,
                None => 0,
            });
        }
        eat(self.ug.len() as u64);
        eat(self.incomplete as u64);
        h
    }

    /// Exports every net's route as plain data, in net-id order — the
    /// routing half of a layout checkpoint.
    pub fn export_routes(&self) -> Vec<NetRouteSnapshot> {
        self.routes
            .iter()
            .map(NetRouteSnapshot::from_route)
            .collect()
    }

    /// Rebuilds a complete routing state from exported snapshots.
    ///
    /// Every index is bounds-checked against `arch` and every segment claim
    /// is checked for conflicts before any typed id is constructed, so a
    /// corrupt or hand-edited checkpoint yields a typed
    /// [`RouteRestoreError`] instead of a panic. Queue and counter
    /// bookkeeping (`U_G`, `U_D`, `incomplete`) is re-derived from the
    /// restored routes; full semantic validation against a placement is the
    /// job of [`verify_routing`](crate::verify_routing).
    ///
    /// # Errors
    ///
    /// Returns the first structural problem found: wrong net count, an
    /// out-of-range index, a double-claimed segment, or an unrouted net
    /// that still lists resources.
    pub fn restore(
        arch: &Architecture,
        netlist: &Netlist,
        snapshots: &[NetRouteSnapshot],
    ) -> Result<RoutingState, RouteRestoreError> {
        if snapshots.len() != netlist.num_nets() {
            return Err(RouteRestoreError::WrongNetCount {
                found: snapshots.len(),
                expected: netlist.num_nets(),
            });
        }
        let num_channels = arch.geometry().num_channels();
        let mut st = RoutingState::new(arch, netlist);
        for (i, snap) in snapshots.iter().enumerate() {
            if !snap.globally_routed {
                if !snap.vsegs.is_empty()
                    || !snap.hsegs.is_empty()
                    || !snap.pending_channels.is_empty()
                    || !snap.spans.is_empty()
                    || snap.vcol.is_some()
                {
                    return Err(RouteRestoreError::UnroutedHoldsResources { net: i });
                }
                continue;
            }
            // Bounds.
            if let Some(col) = snap.vcol {
                if col >= arch.geometry().num_cols() {
                    return Err(RouteRestoreError::IndexOutOfRange {
                        net: i,
                        detail: format!("feedthrough column {col}"),
                    });
                }
            }
            for &v in &snap.vsegs {
                if v >= arch.num_vsegs() {
                    return Err(RouteRestoreError::IndexOutOfRange {
                        net: i,
                        detail: format!("vertical segment {v}"),
                    });
                }
            }
            for (c, segs) in &snap.hsegs {
                if *c >= num_channels {
                    return Err(RouteRestoreError::IndexOutOfRange {
                        net: i,
                        detail: format!("routed channel {c}"),
                    });
                }
                for &h in segs {
                    if h >= arch.num_hsegs() {
                        return Err(RouteRestoreError::IndexOutOfRange {
                            net: i,
                            detail: format!("horizontal segment {h}"),
                        });
                    }
                }
            }
            for c in snap
                .pending_channels
                .iter()
                .copied()
                .chain(snap.spans.iter().map(|s| s.0))
            {
                if c >= num_channels {
                    return Err(RouteRestoreError::IndexOutOfRange {
                        net: i,
                        detail: format!("channel {c}"),
                    });
                }
            }
            // Checked claiming: a second claim of the same segment (by this
            // or any earlier net) is a conflict, never a panic.
            let net = NetId::new(i);
            for &v in &snap.vsegs {
                if let Some(prev) = st.vseg_owner[v] {
                    return Err(RouteRestoreError::SegmentConflict {
                        net: i,
                        detail: format!("vertical segment {v} already owned by {prev}"),
                    });
                }
                st.vseg_owner[v] = Some(net);
                st.retry.claim_vseg(v, &st.vseg_owner);
            }
            for (_, segs) in &snap.hsegs {
                for &h in segs {
                    if let Some(prev) = st.hseg_owner[h] {
                        return Err(RouteRestoreError::SegmentConflict {
                            net: i,
                            detail: format!("horizontal segment {h} already owned by {prev}"),
                        });
                    }
                    st.hseg_owner[h] = Some(net);
                }
            }
            // Install the route and re-derive queue/counter bookkeeping,
            // preserving record order exactly (pending-channel order is
            // part of the deterministic resume contract).
            let route = snap.to_route();
            st.ug.remove(i);
            for c in &route.pending_channels {
                let ci = c.index();
                if st.ud[ci].insert(i) {
                    st.dirty.insert(ci);
                }
            }
            if route.state() == NetRouteState::Detailed {
                st.incomplete -= 1;
            }
            st.routes[i] = route;
        }
        Ok(st)
    }
}

/// Deterministic corruption hooks for the resilience layer's fault-injection
/// tests. Compiled only with the `fault-inject` feature; never called by
/// production code.
#[cfg(feature = "fault-inject")]
impl RoutingState {
    /// Clears the owner entry of the `nth` claimed horizontal segment
    /// (counting claimed entries in index order) *without* touching the
    /// route that lists it — the classic incremental-update divergence.
    /// Returns `false` if fewer than `nth + 1` segments are claimed.
    pub fn fault_clear_hseg_owner(&mut self, nth: usize) -> bool {
        let Some(idx) = self
            .hseg_owner
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_some())
            .map(|(i, _)| i)
            .nth(nth)
        else {
            return false;
        };
        self.hseg_owner[idx] = None;
        // The corruption frees a segment, so invalidate retry stamps like
        // any release would.
        self.retry.htick += 1;
        self.retry.chan_mod[self.retry.hseg_span[idx].0 as usize] += 1;
        self.retry.touch_hseg(idx);
        true
    }

    /// Skews the `incomplete` counter by one — a silent bookkeeping drift.
    pub fn fault_skew_incomplete(&mut self) {
        self.incomplete += 1;
    }

    /// Pops the last segment of the `nth` non-empty horizontal run (counting
    /// runs across nets in id order), clearing its owner entry too, so the
    /// run no longer covers its span. Returns `false` if there is no such
    /// run.
    pub fn fault_truncate_run(&mut self, nth: usize) -> bool {
        let mut seen = 0usize;
        for route in &mut self.routes {
            for (_, segs) in &mut route.hsegs {
                if segs.is_empty() {
                    continue;
                }
                if seen == nth {
                    let h = segs.pop().expect("non-empty run");
                    self.hseg_owner[h.index()] = None;
                    self.retry.htick += 1;
                    self.retry.chan_mod[self.retry.hseg_span[h.index()].0 as usize] += 1;
                    self.retry.touch_hseg(h.index());
                    return true;
                }
                seen += 1;
            }
        }
        false
    }
}

#[cfg(test)]
mod usage_tests {
    use super::*;
    use rowfpga_netlist::{generate, GenerateConfig};
    use rowfpga_place::Placement;

    #[test]
    fn wire_usage_tracks_claims() {
        let nl = generate(&GenerateConfig {
            num_cells: 30,
            num_inputs: 4,
            num_outputs: 4,
            num_seq: 2,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(4)
            .cols(10)
            .io_columns(1)
            .tracks_per_channel(12)
            .build()
            .unwrap();
        let p = Placement::random(&arch, &nl, 5).unwrap();
        let mut st = RoutingState::new(&arch, &nl);
        let chan = ChannelId::new(0);
        let (used0, total) = st.channel_wire_usage(&arch, chan);
        assert_eq!(used0, 0);
        assert_eq!(total, 12 * 10);
        crate::batch::route_batch(
            &mut st,
            &arch,
            &nl,
            &p,
            &crate::config::RouterConfig::default(),
            4,
        );
        let summed: usize = (0..arch.geometry().num_channels())
            .map(|c| st.channel_wire_usage(&arch, ChannelId::new(c)).0)
            .sum();
        let claimed: usize = (0..arch.num_hsegs())
            .filter(|i| st.hseg_owner(rowfpga_arch::HSegId::new(*i)).is_some())
            .map(|i| arch.hseg(rowfpga_arch::HSegId::new(i)).len())
            .sum();
        assert_eq!(summed, claimed);
        let report = st.occupancy_report(&arch);
        assert_eq!(report.lines().count(), 5);
        assert!(report.contains('%'));
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;
    use crate::verify::verify_routing;
    use rowfpga_netlist::{generate, GenerateConfig};
    use rowfpga_place::Placement;

    fn routed_fixture() -> (Architecture, Netlist, Placement, RoutingState) {
        let nl = generate(&GenerateConfig {
            num_cells: 50,
            num_inputs: 6,
            num_outputs: 6,
            num_seq: 3,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(5)
            .cols(14)
            .io_columns(2)
            .tracks_per_channel(16)
            .build()
            .unwrap();
        let p = Placement::random(&arch, &nl, 17).unwrap();
        let mut st = RoutingState::new(&arch, &nl);
        crate::batch::route_batch(
            &mut st,
            &arch,
            &nl,
            &p,
            &crate::config::RouterConfig::default(),
            4,
        );
        (arch, nl, p, st)
    }

    #[test]
    fn export_restore_round_trips_and_verifies() {
        let (arch, nl, p, st) = routed_fixture();
        let snaps = st.export_routes();
        let restored = RoutingState::restore(&arch, &nl, &snaps).unwrap();
        assert_eq!(restored.export_routes(), snaps);
        assert_eq!(restored.incomplete(), st.incomplete());
        assert_eq!(restored.globally_unrouted(), st.globally_unrouted());
        for i in 0..arch.num_hsegs() {
            let id = HSegId::new(i);
            assert_eq!(restored.hseg_owner(id), st.hseg_owner(id));
        }
        for i in 0..arch.num_vsegs() {
            let id = VSegId::new(i);
            assert_eq!(restored.vseg_owner(id), st.vseg_owner(id));
        }
        verify_routing(&restored, &arch, &nl, &p).unwrap();
    }

    #[test]
    fn restore_rejects_malformed_snapshots() {
        let (arch, nl, _, st) = routed_fixture();
        let snaps = st.export_routes();

        assert!(matches!(
            RoutingState::restore(&arch, &nl, &snaps[1..]),
            Err(RouteRestoreError::WrongNetCount { .. })
        ));

        let mut oob = snaps.clone();
        let routed = oob
            .iter()
            .position(|s| !s.hsegs.is_empty())
            .expect("some net detail-routed");
        oob[routed].hsegs[0].1[0] = arch.num_hsegs();
        assert!(matches!(
            RoutingState::restore(&arch, &nl, &oob),
            Err(RouteRestoreError::IndexOutOfRange { .. })
        ));

        let mut dup = snaps.clone();
        let seg = dup[routed].hsegs[0].1[0];
        let other = dup
            .iter()
            .position(|s| !s.globally_routed)
            .unwrap_or_else(|| (routed + 1) % dup.len());
        dup[other] = dup[routed].clone();
        let _ = seg;
        assert!(matches!(
            RoutingState::restore(&arch, &nl, &dup),
            Err(RouteRestoreError::SegmentConflict { .. })
        ));

        let mut bad = snaps.clone();
        bad[routed].globally_routed = false;
        assert!(matches!(
            RoutingState::restore(&arch, &nl, &bad),
            Err(RouteRestoreError::UnroutedHoldsResources { .. })
        ));
    }
}
