// rowfpga-lint: hot-path
//! Incremental detailed routing: segmented channel track assignment.
//!
//! The detailed router assigns each net, in each channel it crosses, a run
//! of consecutive free segments on a single track covering the net's column
//! span (antifuse fabrics only allow adjacent segments on the *same* track
//! to be joined, so a connection cannot change tracks inside a channel —
//! paper §2.1). Track selection minimizes `wastage + segments-used`
//! (paper §3.4, after Roy [11]): wastage hoards wire other nets will need;
//! segment count puts horizontal antifuses — and therefore delay — on the
//! path. Minimizing both constructively prefers short, fast embeddings, in
//! lieu of any explicit wirelength term in the annealer's cost function.

#[cfg(test)]
use rowfpga_arch::HSegId;
use rowfpga_arch::{Architecture, ChannelId, ColId};

use crate::config::RouterConfig;
use crate::state::RoutingState;

/// Counts from one detailed routing pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DetailPassStats {
    /// (net, channel) assignments completed.
    pub routed: usize,
    /// (net, channel) track-assignment attempts that found every feasible
    /// track blocked; the net stays queued in its channel's `U_D`.
    pub failures: usize,
}

/// Attempts to detail route every net in every dirty channel's `U_D`,
/// longest span first. Returns the number of (net, channel) assignments
/// completed and the number of failed attempts.
///
/// The channel work list and per-channel queue live in the state's
/// persistent scratch buffers, and the winning run is materialized exactly
/// once into a pooled segment vector, so a steady-state pass allocates
/// nothing. Channel processing order is irrelevant to the outcome:
/// horizontal resources are disjoint between channels.
pub fn detail_route_pass(
    state: &mut RoutingState,
    arch: &Architecture,
    cfg: &RouterConfig,
) -> DetailPassStats {
    let mut routed = 0;
    let mut failures = 0;
    let mut channels = std::mem::take(&mut state.scratch.channels);
    channels.clear();
    channels.extend(state.dirty_channels());
    let mut queue = std::mem::take(&mut state.scratch.dqueue);
    for &channel in &channels {
        // Retry skip: if the channel's horizontal occupancy and `U_D`
        // membership are unchanged since a pass that left failures here,
        // every queued attempt is doomed to fail identically — count the
        // failures without re-scanning the tracks. Failed attempts have no
        // side effects, so the skip is exact (bit-identical results).
        let key = state.detail_retry_key(channel);
        if state.detail_attempt(channel) == key {
            failures += state.ud_len(channel);
            continue;
        }
        // Longest spans first: they have the fewest feasible tracks.
        queue.clear();
        // A queued net always has a span in its channel; if that invariant
        // were ever broken the net simply stays in `U_D` and surfaces as an
        // incomplete route in the verifier, rather than panicking here.
        queue.extend(state.ud(channel).filter_map(|n| {
            let (lo, hi) = state.route(n).span_in(channel)?;
            Some((n, lo as u32, hi as u32))
        }));
        queue.sort_by(|a, b| (b.2 - b.1).cmp(&(a.2 - a.1)).then(a.0.cmp(&b.0)));

        let mut failed_here = false;
        for &(net, lo, hi) in &queue {
            let (lo, hi) = (lo as usize, hi as usize);
            // Pair-level retry skip: the channel changed since its last
            // recorded pass, but this particular span may still be
            // untouched — then its last failure is guaranteed to repeat.
            if state.detail_retry_doomed(net, channel, lo, hi) {
                failures += 1;
                failed_here = true;
                continue;
            }
            if let Some((t, i, j)) = find_track_run_idx(state, arch, channel, lo, hi, cfg) {
                let mut run = state.take_run();
                run.extend(
                    arch.channel_tracks(channel)[t].segments()[i..=j]
                        .iter()
                        .map(|s| s.id()),
                );
                state.set_channel_routed(net, channel, run);
                routed += 1;
            } else {
                failures += 1;
                failed_here = true;
                state.record_detail_failure(net, channel);
            }
        }
        if failed_here {
            state.record_detail_attempt(channel);
        }
    }
    state.scratch.channels = channels;
    state.scratch.dqueue = queue;
    DetailPassStats { routed, failures }
}

/// Finds the cheapest run of consecutive free segments on one track of
/// `channel` covering columns `lo..=hi`, returned as `(track index, first
/// segment index, last segment index)` so the caller materializes segment
/// ids exactly once — or `None` if every track is blocked.
pub(crate) fn find_track_run_idx(
    state: &RoutingState,
    arch: &Architecture,
    channel: ChannelId,
    lo: usize,
    hi: usize,
    cfg: &RouterConfig,
) -> Option<(usize, usize, usize)> {
    debug_assert!(lo <= hi);
    let mut best: Option<(f64, usize, (usize, usize, usize))> = None;
    for (t, track) in arch.channel_tracks(channel).iter().enumerate() {
        let Some(i) = track.segment_at(ColId::new(lo)) else {
            continue;
        };
        let Some(j) = track.segment_at(ColId::new(hi)) else {
            continue;
        };
        let segs = &track.segments()[i..=j];
        // Cost depends on the segmentation alone, not on occupancy, and is
        // much cheaper than the ownership scan — so score first and only
        // probe occupancy for tracks that would actually displace the
        // incumbent. (Segments of a run are contiguous, so the covered
        // width is just the outer boundary difference.)
        let covered = segs[segs.len() - 1].end() - segs[0].start();
        let wastage = covered - (hi - lo + 1);
        let count = j - i + 1;
        let cost = cfg.wastage_weight * wastage as f64 + cfg.segment_weight * count as f64;
        let better = match &best {
            None => true,
            Some((bc, bcount, _)) => {
                cost < *bc - 1e-12 || ((cost - *bc).abs() <= 1e-12 && count < *bcount)
            }
        };
        if !better {
            continue;
        }
        if segs.iter().any(|s| state.hseg_owner(s.id()).is_some()) {
            continue;
        }
        best = Some((cost, count, (t, i, j)));
    }
    best.map(|(_, _, run)| run)
}

/// [`find_track_run_idx`] materialized into a fresh segment-id vector —
/// the test-friendly form.
#[cfg(test)]
pub(crate) fn find_track_run(
    state: &RoutingState,
    arch: &Architecture,
    channel: ChannelId,
    lo: usize,
    hi: usize,
    cfg: &RouterConfig,
) -> Option<Vec<HSegId>> {
    find_track_run_idx(state, arch, channel, lo, hi, cfg).map(|(t, i, j)| {
        arch.channel_tracks(channel)[t].segments()[i..=j]
            .iter()
            .map(|s| s.id())
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowfpga_arch::SegmentationScheme;
    use rowfpga_netlist::{generate, GenerateConfig, Netlist};
    use rowfpga_place::Placement;

    use crate::global::global_route_pass;

    fn setup() -> (Architecture, Netlist, Placement, RoutingState) {
        let nl = generate(&GenerateConfig {
            num_cells: 40,
            num_inputs: 5,
            num_outputs: 5,
            num_seq: 3,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(5)
            .cols(12)
            .io_columns(2)
            .tracks_per_channel(20)
            .segmentation(SegmentationScheme::Uniform { len: 4 })
            .build()
            .unwrap();
        let p = Placement::random(&arch, &nl, 23).unwrap();
        let st = RoutingState::new(&arch, &nl);
        (arch, nl, p, st)
    }

    #[test]
    fn full_pass_routes_a_roomy_chip() {
        let (arch, nl, p, mut st) = setup();
        let cfg = RouterConfig::default();
        global_route_pass(&mut st, &arch, &nl, &p, &cfg);
        assert_eq!(st.globally_unrouted(), 0);
        let pass = detail_route_pass(&mut st, &arch, &cfg);
        assert_eq!(st.incomplete(), 0, "roomy chip must route fully");
        assert_eq!(pass.failures, 0);
        assert!(pass.routed > 0);
        // every routed run covers its span on a single track
        for (id, _) in nl.nets() {
            let route = st.route(id);
            for (chan, segs) in route.hsegs() {
                let (lo, hi) = route.span_in(*chan).unwrap();
                let first = arch.hseg(segs[0]);
                let last = arch.hseg(*segs.last().unwrap());
                assert!(first.start() <= lo && last.end() > hi);
                let track = arch.hseg_track(segs[0]);
                for (a, b) in segs.iter().zip(segs.iter().skip(1)) {
                    assert_eq!(arch.hseg_track(*b), track, "run changes tracks");
                    assert_eq!(arch.hseg(*a).end(), arch.hseg(*b).start());
                }
            }
        }
    }

    #[test]
    fn cost_prefers_snug_tracks() {
        // Channel with two tracks: one segmented 4+4+4, one full length.
        let arch = Architecture::builder()
            .rows(1)
            .cols(12)
            .io_columns(2)
            .segmentation(SegmentationScheme::Explicit {
                tracks: vec![vec![4, 8], vec![]],
            })
            .build()
            .unwrap();
        let nl = {
            let mut b = Netlist::builder();
            let a = b.add_cell("a", rowfpga_netlist::CellKind::Input);
            let q = b.add_cell("q", rowfpga_netlist::CellKind::Output);
            b.connect("n", a, [(q, 0)]).unwrap();
            b.build().unwrap()
        };
        let st = RoutingState::new(&arch, &nl);
        // span 1..2 fits in the first 4-wide segment: wastage 2, 1 segment
        // (cost 5) vs. the full-length track: wastage 10, 1 segment
        // (cost 13).
        let run = find_track_run(
            &st,
            &arch,
            ChannelId::new(0),
            1,
            2,
            &RouterConfig::default(),
        )
        .expect("fits");
        assert_eq!(run.len(), 1);
        assert_eq!(arch.hseg(run[0]).len(), 4);
    }

    #[test]
    fn segment_weight_avoids_many_joints() {
        // Track 0: 2+2+2+2+2+2 (covering span 0..=5 takes 3 segments,
        // wastage 0). Track 1: full 12 (1 segment, wastage 6).
        let arch = Architecture::builder()
            .rows(1)
            .cols(12)
            .io_columns(2)
            .segmentation(SegmentationScheme::Explicit {
                tracks: vec![vec![2, 4, 6, 8, 10], vec![]],
            })
            .build()
            .unwrap();
        let nl = {
            let mut b = Netlist::builder();
            let a = b.add_cell("a", rowfpga_netlist::CellKind::Input);
            let q = b.add_cell("q", rowfpga_netlist::CellKind::Output);
            b.connect("n", a, [(q, 0)]).unwrap();
            b.build().unwrap()
        };
        let st = RoutingState::new(&arch, &nl);
        // default weights (w=1, s=3): track0 cost 0+9=9, track1 cost 6+3=9
        // → tie broken toward fewer segments (track 1).
        let run = find_track_run(
            &st,
            &arch,
            ChannelId::new(0),
            0,
            5,
            &RouterConfig::default(),
        )
        .unwrap();
        assert_eq!(run.len(), 1, "tie must prefer fewer antifuses");
        // wirability-only weights pick the zero-wastage multi-segment run
        let run = find_track_run(
            &st,
            &arch,
            ChannelId::new(0),
            0,
            5,
            &RouterConfig::wirability_only(),
        )
        .unwrap();
        assert_eq!(run.len(), 3);
    }

    #[test]
    fn blocked_tracks_fail_gracefully() {
        let (arch, nl, p, mut st) = setup();
        let cfg = RouterConfig::default();
        global_route_pass(&mut st, &arch, &nl, &p, &cfg);
        detail_route_pass(&mut st, &arch, &cfg);
        // Rebuild on a 1-track chip: contention must leave failures.
        let narrow = arch.with_tracks(1).unwrap();
        let mut st2 = RoutingState::new(&narrow, &nl);
        global_route_pass(&mut st2, &narrow, &nl, &p, &cfg);
        let pass = detail_route_pass(&mut st2, &narrow, &cfg);
        assert!(st2.incomplete() > 0, "one track cannot carry everything");
        assert!(pass.failures > 0, "starved fabric must report failures");
        // failed nets remain queued in their channels
        let queued: usize = (0..narrow.geometry().num_channels())
            .map(|c| st2.ud(ChannelId::new(c)).count())
            .sum();
        assert!(queued > 0);
    }
}
