//! Router tuning knobs.

/// Cost weights and limits of the incremental routers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RouterConfig {
    /// Weight of segment wastage (unused columns of claimed segments) in
    /// the detailed track-selection cost. Wastage hurts the wirability of
    /// other nets in the channel (paper §3.4).
    pub wastage_weight: f64,
    /// Weight of the number of segments used. Every extra segment is a
    /// horizontal antifuse on the path, which hurts delay (paper §3.4).
    pub segment_weight: f64,
    /// Maximum vertical chain length (segments) the global router will
    /// build for one net; a guard against pathological chains.
    pub max_vchain: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            wastage_weight: 1.0,
            segment_weight: 3.0,
            max_vchain: 32,
        }
    }
}

impl RouterConfig {
    /// A configuration that optimizes purely for wirability (ignores the
    /// antifuse-count pressure); used in ablation experiments.
    pub fn wirability_only() -> Self {
        Self {
            wastage_weight: 1.0,
            segment_weight: 0.0,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_weights_are_positive() {
        let c = RouterConfig::default();
        assert!(c.wastage_weight > 0.0);
        assert!(c.segment_weight > 0.0);
        assert!(c.max_vchain >= 2);
    }

    #[test]
    fn wirability_only_drops_segment_pressure() {
        assert_eq!(RouterConfig::wirability_only().segment_weight, 0.0);
    }
}
