//! Independent verification of a routing state.
//!
//! [`verify_routing`] re-derives every net's geometric requirements from the
//! placement and checks the routing state against them from first
//! principles: exclusive segment ownership, single-track consecutive runs
//! covering every span, vertical chains that actually reach every pin
//! channel, and queue bookkeeping consistent with the route records. The
//! layout engines never call this in their inner loops — it exists so tests
//! (and paranoid users) can audit any state the optimizer produces.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use rowfpga_arch::Architecture;
use rowfpga_netlist::{NetId, Netlist};
use rowfpga_place::Placement;

use crate::route::NetRouteState;
use crate::spans::net_requirements;
use crate::state::RoutingState;

/// A violation found by [`verify_routing`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteVerifyError {
    /// A segment's recorded owner disagrees with the routes.
    OwnershipMismatch {
        /// Human-readable description of the segment and parties.
        detail: String,
    },
    /// A horizontal run is not consecutive segments of one track.
    BrokenRun {
        /// The offending net.
        net: NetId,
        /// Description of the break.
        detail: String,
    },
    /// A routed channel's run does not cover the net's span there.
    SpanNotCovered {
        /// The offending net.
        net: NetId,
        /// Description of the uncovered span.
        detail: String,
    },
    /// A vertical chain does not connect or does not reach all channels.
    BrokenChain {
        /// The offending net.
        net: NetId,
        /// Description of the break.
        detail: String,
    },
    /// Route records disagree with the net's pin-derived requirements.
    RequirementMismatch {
        /// The offending net.
        net: NetId,
        /// Description of the disagreement.
        detail: String,
    },
    /// Queue or counter bookkeeping is inconsistent with the routes.
    BookkeepingMismatch {
        /// Description of the inconsistency.
        detail: String,
    },
}

impl fmt::Display for RouteVerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteVerifyError::OwnershipMismatch { detail } => {
                write!(f, "segment ownership mismatch: {detail}")
            }
            RouteVerifyError::BrokenRun { net, detail } => {
                write!(f, "broken horizontal run on {net}: {detail}")
            }
            RouteVerifyError::SpanNotCovered { net, detail } => {
                write!(f, "span not covered for {net}: {detail}")
            }
            RouteVerifyError::BrokenChain { net, detail } => {
                write!(f, "broken vertical chain on {net}: {detail}")
            }
            RouteVerifyError::RequirementMismatch { net, detail } => {
                write!(f, "route disagrees with requirements of {net}: {detail}")
            }
            RouteVerifyError::BookkeepingMismatch { detail } => {
                write!(f, "bookkeeping mismatch: {detail}")
            }
        }
    }
}

impl Error for RouteVerifyError {}

/// Audits `state` against the placement-derived requirements of every net.
///
/// # Errors
///
/// Returns the first violation found (ownership, run continuity, span
/// coverage, chain connectivity, requirement agreement or queue
/// bookkeeping).
pub fn verify_routing(
    state: &RoutingState,
    arch: &Architecture,
    netlist: &Netlist,
    placement: &Placement,
) -> Result<(), RouteVerifyError> {
    let mut h_owners: BTreeMap<usize, NetId> = BTreeMap::new();
    let mut v_owners: BTreeMap<usize, NetId> = BTreeMap::new();
    let mut incomplete = 0usize;
    let mut globally_unrouted = 0usize;

    for (net, _) in netlist.nets() {
        let route = state.route(net);
        let req = net_requirements(arch, netlist, placement, net);

        match route.state() {
            NetRouteState::Unrouted => {
                globally_unrouted += 1;
                incomplete += 1;
                if !route.vsegs().is_empty() || !route.hsegs().is_empty() {
                    return Err(RouteVerifyError::RequirementMismatch {
                        net,
                        detail: "unrouted net holds segments".into(),
                    });
                }
                continue;
            }
            NetRouteState::Global => incomplete += 1,
            NetRouteState::Detailed => {}
        }

        // Claim bookkeeping for cross-checks below.
        for v in route.vsegs() {
            if let Some(prev) = v_owners.insert(v.index(), net) {
                return Err(RouteVerifyError::OwnershipMismatch {
                    detail: format!("vertical {v:?} in routes of {prev} and {net}"),
                });
            }
        }
        for (_, segs) in route.hsegs() {
            for h in segs {
                if let Some(prev) = h_owners.insert(h.index(), net) {
                    return Err(RouteVerifyError::OwnershipMismatch {
                        detail: format!("horizontal {h:?} in routes of {prev} and {net}"),
                    });
                }
            }
        }

        // Vertical chain connectivity and coverage.
        if req.needs_vertical() {
            let Some(vcol) = route.vcol() else {
                return Err(RouteVerifyError::BrokenChain {
                    net,
                    detail: "multi-channel net has no feedthrough column".into(),
                });
            };
            if route.vsegs().is_empty() {
                return Err(RouteVerifyError::BrokenChain {
                    net,
                    detail: "multi-channel net has no vertical segments".into(),
                });
            }
            let mut reach: Option<usize> = None;
            for v in route.vsegs() {
                let seg = arch.vseg(*v);
                if seg.col() != vcol {
                    return Err(RouteVerifyError::BrokenChain {
                        net,
                        detail: format!("segment {v:?} not in column {vcol:?}"),
                    });
                }
                let (lo, hi) = (seg.chan_lo().index(), seg.chan_hi().index());
                match reach {
                    None => {
                        if lo > req.chan_min {
                            return Err(RouteVerifyError::BrokenChain {
                                net,
                                detail: format!(
                                    "chain starts at channel {lo}, needs {}",
                                    req.chan_min
                                ),
                            });
                        }
                    }
                    Some(r) => {
                        if lo > r {
                            return Err(RouteVerifyError::BrokenChain {
                                net,
                                detail: format!("gap between channel {r} and {lo}"),
                            });
                        }
                    }
                }
                reach = Some(reach.unwrap_or(0).max(hi));
            }
            if reach.unwrap_or(0) < req.chan_max {
                return Err(RouteVerifyError::BrokenChain {
                    net,
                    detail: format!(
                        "chain reaches channel {}, needs {}",
                        reach.unwrap_or(0),
                        req.chan_max
                    ),
                });
            }
        } else if !route.vsegs().is_empty() {
            return Err(RouteVerifyError::RequirementMismatch {
                net,
                detail: "single-channel net holds vertical segments".into(),
            });
        }

        // Channel accounting: routed + pending must equal pin channels, and
        // recorded spans must match the pin-derived spans.
        let mut accounted: Vec<usize> = route
            .hsegs()
            .iter()
            .map(|(c, _)| c.index())
            .chain(route.pending_channels().iter().map(|c| c.index()))
            .collect();
        accounted.sort_unstable();
        let expected: Vec<usize> = req.pin_channels.iter().map(|x| x.0).collect();
        if accounted != expected {
            return Err(RouteVerifyError::RequirementMismatch {
                net,
                detail: format!("channels {accounted:?} != pin channels {expected:?}"),
            });
        }
        for (chan, lo, hi) in route.spans() {
            let want = req.span_in(chan.index(), route.vcol().map(|c| c.index()));
            if want != Some((lo, hi)) {
                return Err(RouteVerifyError::RequirementMismatch {
                    net,
                    detail: format!("span in {chan} recorded ({lo},{hi}), expected {want:?}"),
                });
            }
        }

        // Horizontal runs: one track, consecutive, covering the span.
        for (chan, segs) in route.hsegs() {
            let Some((lo, hi)) = route.span_in(*chan) else {
                return Err(RouteVerifyError::BrokenRun {
                    net,
                    detail: format!("routed channel {chan} has no recorded span"),
                });
            };
            let (Some(&first_seg), Some(&last_seg)) = (segs.first(), segs.last()) else {
                return Err(RouteVerifyError::BrokenRun {
                    net,
                    detail: format!("empty run in {chan}"),
                });
            };
            let track = arch.hseg_track(first_seg);
            for w in segs.windows(2) {
                if arch.hseg_track(w[1]) != track
                    || arch.hseg_channel(w[1]) != *chan
                    || arch.hseg_pos(w[1]) != arch.hseg_pos(w[0]) + 1
                {
                    return Err(RouteVerifyError::BrokenRun {
                        net,
                        detail: format!("{:?} does not follow {:?}", w[1], w[0]),
                    });
                }
            }
            if arch.hseg_channel(first_seg) != *chan {
                return Err(RouteVerifyError::BrokenRun {
                    net,
                    detail: format!("run segments not in channel {chan}"),
                });
            }
            let start = arch.hseg(first_seg).start();
            let end = arch.hseg(last_seg).end();
            if start > lo || end <= hi {
                return Err(RouteVerifyError::SpanNotCovered {
                    net,
                    detail: format!("run covers [{start},{end}), span is [{lo},{hi}]"),
                });
            }
        }
    }

    // Owner arrays agree with the routes.
    for i in 0..arch.num_hsegs() {
        let from_routes = h_owners.get(&i).copied();
        let recorded = state.hseg_owner(rowfpga_arch::HSegId::new(i));
        if from_routes != recorded {
            return Err(RouteVerifyError::OwnershipMismatch {
                detail: format!("hseg {i}: routes say {from_routes:?}, owner array {recorded:?}"),
            });
        }
    }
    for i in 0..arch.num_vsegs() {
        let from_routes = v_owners.get(&i).copied();
        let recorded = state.vseg_owner(rowfpga_arch::VSegId::new(i));
        if from_routes != recorded {
            return Err(RouteVerifyError::OwnershipMismatch {
                detail: format!("vseg {i}: routes say {from_routes:?}, owner array {recorded:?}"),
            });
        }
    }

    // Counters and queues.
    if state.incomplete() != incomplete {
        return Err(RouteVerifyError::BookkeepingMismatch {
            detail: format!(
                "incomplete counter {} != derived {}",
                state.incomplete(),
                incomplete
            ),
        });
    }
    if state.globally_unrouted() != globally_unrouted {
        return Err(RouteVerifyError::BookkeepingMismatch {
            detail: format!(
                "U_G size {} != derived {}",
                state.globally_unrouted(),
                globally_unrouted
            ),
        });
    }
    for (net, _) in netlist.nets() {
        let route = state.route(net);
        let in_ug = state.ug().any(|n| n == net);
        if in_ug != (route.state() == NetRouteState::Unrouted) {
            return Err(RouteVerifyError::BookkeepingMismatch {
                detail: format!("{net} U_G membership inconsistent"),
            });
        }
        for chan in route.pending_channels() {
            if !state.ud(*chan).any(|n| n == net) {
                return Err(RouteVerifyError::BookkeepingMismatch {
                    detail: format!("{net} missing from U_D({chan})"),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::route_batch;
    use crate::config::RouterConfig;
    use rowfpga_netlist::{generate, GenerateConfig};

    fn setup(tracks: usize) -> (Architecture, Netlist, Placement, RoutingState) {
        let nl = generate(&GenerateConfig {
            num_cells: 50,
            num_inputs: 6,
            num_outputs: 6,
            num_seq: 3,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(5)
            .cols(14)
            .io_columns(2)
            .tracks_per_channel(tracks)
            .build()
            .unwrap();
        let p = Placement::random(&arch, &nl, 51).unwrap();
        let st = RoutingState::new(&arch, &nl);
        (arch, nl, p, st)
    }

    #[test]
    fn fresh_state_verifies() {
        let (arch, nl, p, st) = setup(10);
        verify_routing(&st, &arch, &nl, &p).unwrap();
    }

    #[test]
    fn fully_routed_state_verifies() {
        let (arch, nl, p, mut st) = setup(24);
        let out = route_batch(&mut st, &arch, &nl, &p, &RouterConfig::default(), 8);
        assert!(out.fully_routed);
        verify_routing(&st, &arch, &nl, &p).unwrap();
    }

    #[test]
    fn partially_routed_state_verifies() {
        let (arch, nl, p, mut st) = setup(2);
        route_batch(&mut st, &arch, &nl, &p, &RouterConfig::default(), 2);
        verify_routing(&st, &arch, &nl, &p).unwrap();
    }

    #[test]
    fn stale_routes_after_a_move_are_detected() {
        let (arch, nl, p, mut st) = setup(24);
        route_batch(&mut st, &arch, &nl, &p, &RouterConfig::default(), 8);
        // Move a cell *without* ripping up its nets: verification must
        // notice that recorded requirements no longer match.
        let mut p2 = p.clone();
        let cells: Vec<_> = nl
            .cells()
            .filter(|(_, c)| !c.kind().is_io())
            .map(|(id, _)| id)
            .collect();
        let mut detected = false;
        for w in cells.windows(2) {
            p2.swap_sites(&arch, p2.site_of(w[0]), p2.site_of(w[1]));
            if verify_routing(&st, &arch, &nl, &p2).is_err() {
                detected = true;
                break;
            }
        }
        assert!(detected, "no stale route detected across many swaps");
    }

    #[test]
    fn rollback_preserves_verifiability() {
        let (arch, nl, p, mut st) = setup(24);
        let cfg = RouterConfig::default();
        route_batch(&mut st, &arch, &nl, &p, &cfg, 4);
        st.begin_txn();
        let (cell, _) = nl.cells().find(|(_, c)| !c.kind().is_io()).unwrap();
        st.rip_up_cell(&nl, cell);
        st.route_incremental(&arch, &nl, &p, &cfg);
        st.rollback();
        verify_routing(&st, &arch, &nl, &p).unwrap();
    }
}
