//! Per-net route records.

use rowfpga_arch::{ChannelId, ColId, HSegId, VSegId};

/// The disposition of a net in an evolving layout (paper §3.2): nets appear
/// in three distinct states depending on which routing resources they hold.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NetRouteState {
    /// No assigned segments at all.
    Unrouted,
    /// Vertical segments assigned (feedthroughs chosen), horizontal routing
    /// incomplete in at least one required channel.
    Global,
    /// Vertical and horizontal segments assigned in every required channel.
    Detailed,
}

/// The physical embedding of one net.
///
/// A route consists of an optional vertical segment chain (for nets spanning
/// several channels) in one feedthrough column, plus, per required channel,
/// a run of consecutive horizontal segments on a single track. Channels the
/// net still needs but could not be routed in are listed in
/// [`NetRoute::pending_channels`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetRoute {
    /// Chained vertical segments, ordered bottom-up. Empty for
    /// single-channel nets and unrouted nets.
    pub(crate) vsegs: Vec<VSegId>,
    /// The feedthrough column of the vertical chain.
    pub(crate) vcol: Option<ColId>,
    /// Horizontal segment runs, one per successfully routed channel.
    pub(crate) hsegs: Vec<(ChannelId, Vec<HSegId>)>,
    /// Required channels not yet detail-routed.
    pub(crate) pending_channels: Vec<ChannelId>,
    /// The column span the net must cover in each required channel
    /// (inclusive), fixed at global-routing time.
    pub(crate) spans: Vec<(ChannelId, u32, u32)>,
    /// Whether the net holds a global routing decision (a single-channel
    /// net's decision is the trivial empty chain).
    pub(crate) globally_routed: bool,
}

impl NetRoute {
    /// The net's vertical segments, ordered from the lowest channel up.
    pub fn vsegs(&self) -> &[VSegId] {
        &self.vsegs
    }

    /// The feedthrough column, if the net spans channels.
    pub fn vcol(&self) -> Option<ColId> {
        self.vcol
    }

    /// The horizontal segment runs per routed channel.
    pub fn hsegs(&self) -> &[(ChannelId, Vec<HSegId>)] {
        &self.hsegs
    }

    /// The horizontal run in `channel`, if routed there.
    pub fn hsegs_in(&self, channel: ChannelId) -> Option<&[HSegId]> {
        self.hsegs
            .iter()
            .find(|(c, _)| *c == channel)
            .map(|(_, segs)| segs.as_slice())
    }

    /// Channels the net requires but is not yet routed in.
    pub fn pending_channels(&self) -> &[ChannelId] {
        &self.pending_channels
    }

    /// The required column span (inclusive) in each channel, fixed when the
    /// net was globally routed.
    pub fn spans(&self) -> impl Iterator<Item = (ChannelId, usize, usize)> + '_ {
        self.spans
            .iter()
            .map(|&(c, lo, hi)| (c, lo as usize, hi as usize))
    }

    /// The required span in one channel.
    pub fn span_in(&self, channel: ChannelId) -> Option<(usize, usize)> {
        self.spans
            .iter()
            .find(|(c, _, _)| *c == channel)
            .map(|&(_, lo, hi)| (lo as usize, hi as usize))
    }

    /// Whether this record holds a global routing decision.
    pub fn is_globally_routed(&self) -> bool {
        self.globally_routed
    }

    /// The net's routing state.
    pub fn state(&self) -> NetRouteState {
        if !self.globally_routed {
            NetRouteState::Unrouted
        } else if self.pending_channels.is_empty() {
            NetRouteState::Detailed
        } else {
            NetRouteState::Global
        }
    }

    /// Number of programmed antifuses implied by the embedding: one per
    /// junction between consecutive horizontal segments, one per junction
    /// between chained vertical segments, one cross antifuse per
    /// vertical-to-horizontal tap, and one cross antifuse per pin tap is
    /// accounted by the timing model separately.
    pub fn wiring_antifuses(&self) -> usize {
        let h_joints: usize = self
            .hsegs
            .iter()
            .map(|(_, segs)| segs.len().saturating_sub(1))
            .sum();
        let v_joints = self.vsegs.len().saturating_sub(1);
        // each routed channel of a multi-channel net taps the chain once
        let taps = if self.vsegs.is_empty() {
            0
        } else {
            self.hsegs.len()
        };
        h_joints + v_joints + taps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unrouted() {
        let r = NetRoute::default();
        assert_eq!(r.state(), NetRouteState::Unrouted);
        assert!(r.vsegs().is_empty());
        assert!(r.vcol().is_none());
        assert_eq!(r.wiring_antifuses(), 0);
    }

    #[test]
    fn state_transitions_follow_fields() {
        let mut r = NetRoute {
            globally_routed: true,
            pending_channels: vec![ChannelId::new(1)],
            ..NetRoute::default()
        };
        assert_eq!(r.state(), NetRouteState::Global);
        r.pending_channels.clear();
        assert_eq!(r.state(), NetRouteState::Detailed);
        r = NetRoute::default();
        assert_eq!(r.state(), NetRouteState::Unrouted);
    }

    #[test]
    fn antifuse_count_adds_joints_and_taps() {
        let r = NetRoute {
            globally_routed: true,
            vsegs: vec![VSegId::new(0), VSegId::new(1)], // 1 vertical joint
            vcol: Some(ColId::new(3)),
            hsegs: vec![
                (ChannelId::new(0), vec![HSegId::new(0), HSegId::new(1)]), // 1 joint + 1 tap
                (ChannelId::new(2), vec![HSegId::new(9)]),                 // 1 tap
            ],
            ..NetRoute::default()
        };
        assert_eq!(r.wiring_antifuses(), 1 + 1 + 2);
    }

    #[test]
    fn span_lookup() {
        let r = NetRoute {
            spans: vec![(ChannelId::new(2), 3, 9)],
            ..NetRoute::default()
        };
        assert_eq!(r.span_in(ChannelId::new(2)), Some((3, 9)));
        assert_eq!(r.span_in(ChannelId::new(0)), None);
        assert_eq!(r.spans().count(), 1);
    }
}
