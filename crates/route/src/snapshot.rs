//! Plain-data export/restore of a [`RoutingState`](crate::RoutingState).
//!
//! Checkpointing needs the complete routing assignment as dependency-free
//! data: [`NetRouteSnapshot`] mirrors one [`NetRoute`](crate::NetRoute) with
//! bare indices instead of typed ids, and
//! [`RoutingState::restore`](crate::RoutingState::restore) rebuilds a full
//! state from a vector of them with *checked* segment claiming — malformed
//! or conflicting snapshots (a corrupt or hand-edited checkpoint file)
//! surface as a typed [`RouteRestoreError`] instead of a panic.

use std::error::Error;
use std::fmt;

use rowfpga_arch::{ChannelId, ColId, HSegId, VSegId};

use crate::route::NetRoute;

/// The physical embedding of one net as plain data (bare indices), suitable
/// for serialization. Produced by
/// [`RoutingState::export_routes`](crate::RoutingState::export_routes) and
/// consumed by [`RoutingState::restore`](crate::RoutingState::restore).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetRouteSnapshot {
    /// Vertical segment indices, ordered bottom-up.
    pub vsegs: Vec<usize>,
    /// The feedthrough column index of the vertical chain.
    pub vcol: Option<usize>,
    /// Horizontal runs: `(channel index, segment indices)` per routed
    /// channel, in record order.
    pub hsegs: Vec<(usize, Vec<usize>)>,
    /// Channel indices awaiting detailed routing, in record order.
    pub pending_channels: Vec<usize>,
    /// Required `(channel, lo, hi)` column spans.
    pub spans: Vec<(usize, u32, u32)>,
    /// Whether the net holds a global routing decision.
    pub globally_routed: bool,
}

impl NetRouteSnapshot {
    /// Exports a route record as plain data.
    pub fn from_route(route: &NetRoute) -> NetRouteSnapshot {
        NetRouteSnapshot {
            vsegs: route.vsegs.iter().map(|v| v.index()).collect(),
            vcol: route.vcol.map(|c| c.index()),
            hsegs: route
                .hsegs
                .iter()
                .map(|(c, segs)| (c.index(), segs.iter().map(|h| h.index()).collect()))
                .collect(),
            pending_channels: route.pending_channels.iter().map(|c| c.index()).collect(),
            spans: route
                .spans
                .iter()
                .map(|&(c, lo, hi)| (c.index(), lo, hi))
                .collect(),
            globally_routed: route.globally_routed,
        }
    }

    /// Rebuilds the typed route record. Bounds are *not* checked here —
    /// [`RoutingState::restore`](crate::RoutingState::restore) validates
    /// before converting.
    pub(crate) fn to_route(&self) -> NetRoute {
        NetRoute {
            vsegs: self.vsegs.iter().map(|&v| VSegId::new(v)).collect(),
            vcol: self.vcol.map(ColId::new),
            hsegs: self
                .hsegs
                .iter()
                .map(|(c, segs)| {
                    (
                        ChannelId::new(*c),
                        segs.iter().map(|&h| HSegId::new(h)).collect(),
                    )
                })
                .collect(),
            pending_channels: self
                .pending_channels
                .iter()
                .map(|&c| ChannelId::new(c))
                .collect(),
            spans: self
                .spans
                .iter()
                .map(|&(c, lo, hi)| (ChannelId::new(c), lo, hi))
                .collect(),
            globally_routed: self.globally_routed,
        }
    }
}

/// Why a routing snapshot could not be restored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteRestoreError {
    /// The snapshot's net count disagrees with the netlist.
    WrongNetCount {
        /// Nets in the snapshot.
        found: usize,
        /// Nets in the netlist.
        expected: usize,
    },
    /// A segment, channel or column index exceeds the architecture.
    IndexOutOfRange {
        /// Net whose record is malformed.
        net: usize,
        /// Description of the offending index.
        detail: String,
    },
    /// Two nets (or one net twice) claim the same segment.
    SegmentConflict {
        /// Net whose claim collided.
        net: usize,
        /// Description of the contested segment.
        detail: String,
    },
    /// A net without a global routing decision still lists resources.
    UnroutedHoldsResources {
        /// The inconsistent net.
        net: usize,
    },
}

impl fmt::Display for RouteRestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteRestoreError::WrongNetCount { found, expected } => {
                write!(f, "snapshot has {found} nets, netlist has {expected}")
            }
            RouteRestoreError::IndexOutOfRange { net, detail } => {
                write!(f, "net {net}: index out of range: {detail}")
            }
            RouteRestoreError::SegmentConflict { net, detail } => {
                write!(f, "net {net}: segment conflict: {detail}")
            }
            RouteRestoreError::UnroutedHoldsResources { net } => {
                write!(f, "net {net}: unrouted but holds routing resources")
            }
        }
    }
}

impl Error for RouteRestoreError {}
