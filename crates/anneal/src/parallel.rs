//! Parallel multi-replica annealing.
//!
//! `K` independent replicas of the same problem anneal concurrently, each
//! on its own thread with its own RNG stream (derived from the base seed
//! by [`replica_seed`]), periodically pausing at a temperature boundary to
//! exchange layouts: every replica publishes its current cost, the
//! cheapest replica publishes its layout snapshot, and every strictly
//! worse replica adopts it before continuing its own stochastic walk.
//! This is the classic "parallel moves, serial exchange" recipe: replicas
//! explore independently between exchanges, so wall-clock scales with
//! thread count, while the exchange keeps the population anchored to the
//! best basin found so far.
//!
//! The run is **deterministic in `(seed, K)`**: every replica's trajectory
//! is a pure function of its derived seed and the snapshots it adopts, and
//! adoption decisions depend only on the deterministic per-replica costs —
//! thread scheduling cannot reorder them because exchanges happen at a
//! [`Barrier`]. A single-replica run (`K = 1`) executes on the calling
//! thread and is bit-identical to the sequential [`Annealer`] driven with
//! the same configuration.
//!
//! Problems never cross threads — each replica is built *inside* its
//! thread by the caller's factory — so the problem type itself does not
//! need to be [`Send`]; only its plain-data layout snapshot does.

use std::sync::{Barrier, Mutex};

use rowfpga_obs::Obs;

use crate::{AnnealConfig, AnnealOutcome, AnnealProblem, Annealer};

/// An annealing problem that can participate in multi-replica exchange:
/// its complete layout state can be exported as plain data and adopted by
/// another replica of the same problem.
pub trait ReplicaProblem: AnnealProblem {
    /// Plain-data export of the layout state (crosses threads).
    type Snapshot: Send;

    /// Exports the current layout state.
    fn snapshot(&self) -> Self::Snapshot;

    /// Replaces this replica's layout state with `snapshot` (taken from a
    /// replica of the *same* problem, so it always reconstructs).
    fn adopt(&mut self, snapshot: &Self::Snapshot);
}

/// Configuration of the exchange cadence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Temperatures each replica runs between exchanges (minimum 1).
    pub exchange_every: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig { exchange_every: 4 }
    }
}

/// The RNG seed of replica `r` for base seed `base`: replica 0 keeps the
/// base seed (so `K = 1` reproduces the sequential run bit-for-bit), and
/// later replicas decorrelate by a golden-ratio stride.
pub fn replica_seed(base: u64, replica: usize) -> u64 {
    base.wrapping_add((replica as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// One replica's share of a parallel run.
#[derive(Clone, Debug)]
pub struct ReplicaReport {
    /// The replica's own annealing outcome (its history reflects its own
    /// walk; adopted layouts enter silently between temperatures).
    pub outcome: AnnealOutcome,
    /// How many exchanges ended with this replica adopting another's
    /// layout.
    pub adoptions: usize,
}

/// Result of a parallel multi-replica run.
#[derive(Clone, Debug)]
pub struct ParallelOutcome<S> {
    /// Index of the replica whose final cost was lowest (ties break to the
    /// lowest index).
    pub best_replica: usize,
    /// The best replica's final layout snapshot.
    pub best: S,
    /// The best replica's final cost.
    pub best_cost: f64,
    /// Exchange rounds performed (0 for a single replica).
    pub exchanges: usize,
    /// Per-replica outcomes, indexed by replica.
    pub replicas: Vec<ReplicaReport>,
}

/// What each replica publishes at an exchange boundary.
#[derive(Clone, Copy)]
struct Published {
    cost: f64,
    finished: bool,
}

/// What a replica thread hands back when it joins: its outcome, adoption
/// count, final cost, final snapshot, and exchange rounds participated in.
type ReplicaRun<S> = (AnnealOutcome, usize, f64, S, usize);

/// Runs `replicas` annealing replicas of the problem `factory` builds,
/// exchanging best layouts every [`ParallelConfig::exchange_every`]
/// temperatures. `factory(r)` is called once, inside replica `r`'s thread,
/// and must build replica `r`'s starting state; replica `r` anneals with
/// seed [`replica_seed`]`(config.seed, r)`.
///
/// Deterministic in `(config, replicas)`; `replicas == 1` runs on the
/// calling thread and is bit-identical to the sequential [`Annealer`].
///
/// # Panics
///
/// Panics if `replicas == 0` or a replica thread panics (the panic is
/// propagated).
pub fn anneal_parallel<P, F>(
    factory: F,
    replicas: usize,
    config: &AnnealConfig,
    par: &ParallelConfig,
) -> ParallelOutcome<P::Snapshot>
where
    P: ReplicaProblem,
    F: Fn(usize) -> P + Sync,
{
    assert!(replicas > 0, "at least one replica");
    let exchange_every = par.exchange_every.max(1);

    // K = 1: the sequential engine on the calling thread, verbatim.
    if replicas == 1 {
        let obs = Obs::disabled();
        let cfg = AnnealConfig {
            seed: replica_seed(config.seed, 0),
            ..config.clone()
        };
        let mut problem = factory(0);
        let mut engine = Annealer::start(&mut problem, &cfg, &obs);
        while engine.step(&mut problem, &obs).is_some() {}
        let outcome = engine.outcome(&problem);
        let best_cost = outcome.final_cost;
        return ParallelOutcome {
            best_replica: 0,
            best: problem.snapshot(),
            best_cost,
            exchanges: 0,
            replicas: vec![ReplicaReport {
                outcome,
                adoptions: 0,
            }],
        };
    }

    let barrier = Barrier::new(replicas);
    let published = Mutex::new(vec![
        Published {
            cost: f64::INFINITY,
            finished: false,
        };
        replicas
    ]);
    let best_slot: Mutex<Option<P::Snapshot>> = Mutex::new(None);

    let mut results: Vec<Option<ReplicaRun<P::Snapshot>>> = (0..replicas).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(replicas);
        for r in 0..replicas {
            let factory = &factory;
            let barrier = &barrier;
            let published = &published;
            let best_slot = &best_slot;
            handles.push(scope.spawn(move || {
                let obs = Obs::disabled();
                let cfg = AnnealConfig {
                    seed: replica_seed(config.seed, r),
                    ..config.clone()
                };
                let mut problem = factory(r);
                let mut engine = Annealer::start(&mut problem, &cfg, &obs);
                let mut adoptions = 0usize;
                let mut rounds = 0usize;
                loop {
                    for _ in 0..exchange_every {
                        if engine.step(&mut problem, &obs).is_none() {
                            break;
                        }
                    }
                    let my_cost = problem.cost();
                    published.lock().unwrap()[r] = Published {
                        cost: my_cost,
                        finished: engine.finished(),
                    };
                    barrier.wait();
                    // Every replica derives the same winner from the same
                    // published costs (strict `<` keeps the lowest index
                    // on ties).
                    let (winner, winner_cost, all_finished) = {
                        let pubs = published.lock().unwrap();
                        let mut w = 0usize;
                        for (i, p) in pubs.iter().enumerate().skip(1) {
                            if p.cost.total_cmp(&pubs[w].cost).is_lt() {
                                w = i;
                            }
                        }
                        (w, pubs[w].cost, pubs.iter().all(|p| p.finished))
                    };
                    if r == winner {
                        *best_slot.lock().unwrap() = Some(problem.snapshot());
                    }
                    barrier.wait();
                    if r != winner && !engine.finished() && my_cost.total_cmp(&winner_cost).is_gt()
                    {
                        let slot = best_slot.lock().unwrap();
                        problem.adopt(slot.as_ref().expect("winner published a snapshot"));
                        adoptions += 1;
                    }
                    rounds += 1;
                    // Hold every replica until adoptions are done, so the
                    // winner cannot overwrite the slot next round while a
                    // loser still reads it.
                    barrier.wait();
                    if all_finished {
                        break;
                    }
                }
                let outcome = engine.outcome(&problem);
                let final_cost = outcome.final_cost;
                (outcome, adoptions, final_cost, problem.snapshot(), rounds)
            }));
        }
        for (r, handle) in handles.into_iter().enumerate() {
            results[r] = Some(match handle.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            });
        }
    });

    let mut best_replica = 0usize;
    let mut exchanges = 0usize;
    let mut reports = Vec::with_capacity(replicas);
    let mut snapshots = Vec::with_capacity(replicas);
    let mut costs = Vec::with_capacity(replicas);
    for (r, slot) in results.into_iter().enumerate() {
        let (outcome, adoptions, final_cost, snapshot, rounds) =
            slot.expect("every replica joined");
        reports.push(ReplicaReport { outcome, adoptions });
        snapshots.push(Some(snapshot));
        costs.push(final_cost);
        if costs[r].total_cmp(&costs[best_replica]).is_lt() {
            best_replica = r;
        }
        exchanges = rounds;
    }
    ParallelOutcome {
        best_replica,
        best: snapshots[best_replica].take().expect("snapshot present"),
        best_cost: costs[best_replica],
        exchanges,
        replicas: reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::anneal;

    /// Toy replica problem: minimize squared distance from a target vector,
    /// with the vector itself as the exchanged snapshot.
    struct Toy {
        x: Vec<i64>,
        target: Vec<i64>,
    }

    impl Toy {
        fn new(n: usize) -> Toy {
            Toy {
                x: vec![0; n],
                target: (0..n as i64).collect(),
            }
        }
        fn cost_of(&self) -> f64 {
            self.x
                .iter()
                .zip(&self.target)
                .map(|(a, b)| ((a - b) * (a - b)) as f64)
                .sum()
        }
    }

    impl AnnealProblem for Toy {
        type Applied = (usize, i64);

        fn propose_and_apply(&mut self, rng: &mut StdRng) -> (Self::Applied, f64) {
            let i = rng.gen_range(0..self.x.len());
            let step = if rng.gen_bool(0.5) { 1 } else { -1 };
            let before = self.cost_of();
            self.x[i] += step;
            ((i, step), self.cost_of() - before)
        }

        fn undo(&mut self, (i, step): Self::Applied) {
            self.x[i] -= step;
        }

        fn commit(&mut self, _applied: Self::Applied) {}

        fn cost(&self) -> f64 {
            self.cost_of()
        }
    }

    impl ReplicaProblem for Toy {
        type Snapshot = Vec<i64>;

        fn snapshot(&self) -> Vec<i64> {
            self.x.clone()
        }

        fn adopt(&mut self, snapshot: &Vec<i64>) {
            self.x.clone_from(snapshot);
        }
    }

    fn cfg(seed: u64) -> AnnealConfig {
        AnnealConfig {
            seed,
            max_temps: 20,
            ..AnnealConfig::fast()
        }
    }

    fn run(seed: u64, k: usize) -> ParallelOutcome<Vec<i64>> {
        anneal_parallel(|_| Toy::new(8), k, &cfg(seed), &ParallelConfig::default())
    }

    #[test]
    fn single_replica_is_bit_identical_to_the_sequential_engine() {
        let mut seq = Toy::new(8);
        let sequential = anneal(&mut seq, &cfg(11), |_| {});
        let par = run(11, 1);
        assert_eq!(par.best_replica, 0);
        assert_eq!(par.exchanges, 0);
        assert_eq!(par.best, seq.x);
        assert_eq!(par.best_cost, sequential.final_cost);
        let rep = &par.replicas[0].outcome;
        assert_eq!(rep.total_moves, sequential.total_moves);
        assert_eq!(rep.history, sequential.history);
    }

    #[test]
    fn parallel_runs_are_deterministic_in_seed_and_replica_count() {
        for k in [2, 3] {
            let a = run(5, k);
            let b = run(5, k);
            assert_eq!(a.best_replica, b.best_replica);
            assert_eq!(a.best, b.best);
            assert_eq!(a.best_cost, b.best_cost);
            assert_eq!(a.exchanges, b.exchanges);
            for (x, y) in a.replicas.iter().zip(&b.replicas) {
                assert_eq!(x.adoptions, y.adoptions);
                assert_eq!(x.outcome.total_moves, y.outcome.total_moves);
                assert_eq!(x.outcome.final_cost, y.outcome.final_cost);
                assert_eq!(x.outcome.history, y.outcome.history);
            }
        }
    }

    #[test]
    fn replicas_use_distinct_rng_streams() {
        let out = run(5, 3);
        assert_eq!(out.replicas.len(), 3);
        // Different streams explore differently: the full per-temperature
        // histories cannot all coincide.
        let h0 = &out.replicas[0].outcome.history;
        assert!(
            out.replicas[1..].iter().any(|r| r.outcome.history != *h0),
            "replica walks are identical; streams are correlated"
        );
        assert_ne!(replica_seed(5, 0), replica_seed(5, 1));
        assert_eq!(replica_seed(5, 0), 5);
    }

    #[test]
    fn exchange_spreads_the_best_layout() {
        // On a convex toy landscape every replica converges to the
        // optimum; the point here is that the exchange machinery ran and
        // the reported best matches the best replica's final state.
        let out = run(9, 3);
        assert!(out.exchanges > 0);
        let best = &out.replicas[out.best_replica].outcome;
        assert_eq!(out.best_cost, best.final_cost);
        for r in &out.replicas {
            assert!(out.best_cost <= r.outcome.final_cost);
        }
    }

    #[test]
    fn best_replica_ties_break_to_the_lowest_index() {
        // All replicas reach cost 0 on this easy landscape.
        let out = anneal_parallel(
            |_| Toy::new(4),
            3,
            &AnnealConfig {
                seed: 3,
                ..AnnealConfig::default()
            },
            &ParallelConfig::default(),
        );
        if out
            .replicas
            .iter()
            .all(|r| r.outcome.final_cost == out.best_cost)
        {
            assert_eq!(out.best_replica, 0);
        }
    }
}
