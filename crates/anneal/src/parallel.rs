//! Parallel multi-replica annealing.
//!
//! `K` independent replicas of the same problem anneal concurrently, each
//! on its own thread with its own RNG stream (derived from the base seed
//! by [`replica_seed`]), periodically pausing at a temperature boundary to
//! exchange layouts: every replica publishes its current cost, the
//! cheapest replica publishes its layout snapshot, and every strictly
//! worse replica adopts it before continuing its own stochastic walk.
//! This is the classic "parallel moves, serial exchange" recipe: replicas
//! explore independently between exchanges, so wall-clock scales with
//! thread count, while the exchange keeps the population anchored to the
//! best basin found so far.
//!
//! The run is **deterministic in `(seed, K)`**: every replica's trajectory
//! is a pure function of its derived seed and the snapshots it adopts, and
//! adoption decisions depend only on the deterministic per-replica costs —
//! thread scheduling cannot reorder them because exchanges happen at a
//! [`Barrier`]. A single-replica run (`K = 1`) executes on the calling
//! thread and is bit-identical to the sequential [`Annealer`] driven with
//! the same configuration.
//!
//! Problems never cross threads — each replica is built *inside* its
//! thread by the caller's factory — so the problem type itself does not
//! need to be [`Send`]; only its plain-data layout snapshot does.

use std::sync::{Barrier, Mutex};

use rowfpga_obs::{Event, EventMeta, MetricsRegistry, Obs, PhaseProfiler, ReplaySink};

use crate::{AnnealConfig, AnnealOutcome, AnnealProblem, Annealer};

/// An annealing problem that can participate in multi-replica exchange:
/// its complete layout state can be exported as plain data and adopted by
/// another replica of the same problem.
pub trait ReplicaProblem: AnnealProblem {
    /// Plain-data export of the layout state (crosses threads).
    type Snapshot: Send;

    /// Exports the current layout state.
    fn snapshot(&self) -> Self::Snapshot;

    /// Replaces this replica's layout state with `snapshot` (taken from a
    /// replica of the *same* problem, so it always reconstructs).
    fn adopt(&mut self, snapshot: &Self::Snapshot);
}

/// Configuration of the exchange cadence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Temperatures each replica runs between exchanges (minimum 1).
    pub exchange_every: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig { exchange_every: 4 }
    }
}

/// The RNG seed of replica `r` for base seed `base`: replica 0 keeps the
/// base seed (so `K = 1` reproduces the sequential run bit-for-bit), and
/// later replicas decorrelate by a golden-ratio stride.
pub fn replica_seed(base: u64, replica: usize) -> u64 {
    base.wrapping_add((replica as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// One replica's share of a parallel run.
#[derive(Clone, Debug)]
pub struct ReplicaReport {
    /// The replica's own annealing outcome (its history reflects its own
    /// walk; adopted layouts enter silently between temperatures).
    pub outcome: AnnealOutcome,
    /// How many exchanges ended with this replica adopting another's
    /// layout.
    pub adoptions: usize,
}

/// Result of a parallel multi-replica run.
#[derive(Clone, Debug)]
pub struct ParallelOutcome<S> {
    /// Index of the replica whose final cost was lowest (ties break to the
    /// lowest index).
    pub best_replica: usize,
    /// The best replica's final layout snapshot.
    pub best: S,
    /// The best replica's final cost.
    pub best_cost: f64,
    /// Exchange rounds performed (0 for a single replica).
    pub exchanges: usize,
    /// Per-replica outcomes, indexed by replica.
    pub replicas: Vec<ReplicaReport>,
}

/// What each replica publishes at an exchange boundary.
#[derive(Clone, Copy)]
struct Published {
    cost: f64,
    finished: bool,
}

/// What a replica thread hands back when it joins: its outcome, adoption
/// count, final cost, final snapshot, and exchange rounds participated in.
type ReplicaRun<S> = (AnnealOutcome, usize, f64, S, usize);

/// One replica's journal batch, keyed for the deterministic merge:
/// `(round, replica, events)`. The final post-loop drain uses
/// `round = u64::MAX` so it sorts after every exchange round.
type JournalBatch = (u64, usize, Vec<(Event, EventMeta)>);

/// Runs `replicas` annealing replicas of the problem `factory` builds,
/// exchanging best layouts every [`ParallelConfig::exchange_every`]
/// temperatures. `factory(r)` is called once, inside replica `r`'s thread,
/// and must build replica `r`'s starting state; replica `r` anneals with
/// seed [`replica_seed`]`(config.seed, r)`.
///
/// Deterministic in `(config, replicas)`; `replicas == 1` runs on the
/// calling thread and is bit-identical to the sequential [`Annealer`].
///
/// # Panics
///
/// Panics if `replicas == 0` or a replica thread panics (the panic is
/// propagated).
pub fn anneal_parallel<P, F>(
    factory: F,
    replicas: usize,
    config: &AnnealConfig,
    par: &ParallelConfig,
) -> ParallelOutcome<P::Snapshot>
where
    P: ReplicaProblem,
    F: Fn(usize) -> P + Sync,
{
    anneal_parallel_observed(factory, replicas, config, par, &Obs::disabled())
}

/// [`anneal_parallel`] with per-replica observability.
///
/// With an enabled `obs`, a single replica anneals directly against the
/// caller's session (fully live journal; the RNG stream is untouched, so
/// the bit-identical contract with the sequential [`Annealer`] holds).
/// With `K > 1`, each replica thread records into its own buffered
/// session — events stamped with replica id `r + 1` and span ids
/// namespaced by `(r + 1) << 32` — and the batches are drained at every
/// exchange barrier, then merged into the caller's journal in
/// `(round, replica)` order after the threads join. One `exchange` event
/// is emitted per round, and every replica's metrics and phase totals are
/// absorbed into the caller's registry, so the merged journal and final
/// report are pure functions of `(config, replicas)` apart from wall-clock
/// durations.
pub fn anneal_parallel_observed<P, F>(
    factory: F,
    replicas: usize,
    config: &AnnealConfig,
    par: &ParallelConfig,
    obs: &Obs,
) -> ParallelOutcome<P::Snapshot>
where
    P: ReplicaProblem,
    F: Fn(usize) -> P + Sync,
{
    assert!(replicas > 0, "at least one replica");
    let exchange_every = par.exchange_every.max(1);

    // K = 1: the sequential engine on the calling thread, verbatim, with
    // the caller's own (possibly live-streaming) session.
    if replicas == 1 {
        let cfg = AnnealConfig {
            seed: replica_seed(config.seed, 0),
            ..config.clone()
        };
        let mut problem = factory(0);
        let mut engine = Annealer::start(&mut problem, &cfg, obs);
        while engine.step(&mut problem, obs).is_some() {}
        let outcome = engine.outcome(&problem);
        let best_cost = outcome.final_cost;
        return ParallelOutcome {
            best_replica: 0,
            best: problem.snapshot(),
            best_cost,
            exchanges: 0,
            replicas: vec![ReplicaReport {
                outcome,
                adoptions: 0,
            }],
        };
    }

    /// A poisoned mutex means a replica thread panicked; that panic is
    /// re-raised at join, so the journal/metrics state behind the lock is
    /// still safe to read here.
    fn lock_ignoring_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    let record = obs.enabled();
    let barrier = Barrier::new(replicas);
    let published = Mutex::new(vec![
        Published {
            cost: f64::INFINITY,
            finished: false,
        };
        replicas
    ]);
    let best_slot: Mutex<Option<P::Snapshot>> = Mutex::new(None);
    // Journal batches drained at exchange barriers, exchange summaries
    // (computed once per round by replica 0), and each replica's final
    // metrics/profiler, all shipped back for the deterministic merge.
    let journal_batches: Mutex<Vec<JournalBatch>> = Mutex::new(Vec::new());
    let exchange_log: Mutex<Vec<(usize, usize, f64, usize)>> = Mutex::new(Vec::new());
    let replica_metrics: Mutex<Vec<(usize, MetricsRegistry, PhaseProfiler)>> =
        Mutex::new(Vec::new());

    let mut results: Vec<Option<ReplicaRun<P::Snapshot>>> = (0..replicas).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(replicas);
        for r in 0..replicas {
            let factory = &factory;
            let barrier = &barrier;
            let published = &published;
            let best_slot = &best_slot;
            let journal_batches = &journal_batches;
            let exchange_log = &exchange_log;
            let replica_metrics = &replica_metrics;
            handles.push(scope.spawn(move || {
                // The session layer is Rc-based and must be built inside
                // the thread; the ReplaySink handle lets this thread drain
                // its own buffer at each barrier.
                let (obs, buffer) = if record {
                    let buffer = ReplaySink::new();
                    (
                        Obs::for_replica(r as u32 + 1, Box::new(buffer.clone())),
                        Some(buffer),
                    )
                } else {
                    (Obs::disabled(), None)
                };
                let cfg = AnnealConfig {
                    seed: replica_seed(config.seed, r),
                    ..config.clone()
                };
                let mut problem = factory(r);
                let mut engine = Annealer::start(&mut problem, &cfg, &obs);
                let mut adoptions = 0usize;
                let mut rounds = 0usize;
                loop {
                    for _ in 0..exchange_every {
                        if engine.step(&mut problem, &obs).is_none() {
                            break;
                        }
                    }
                    let my_cost = problem.cost();
                    published.lock().unwrap()[r] = Published {
                        cost: my_cost,
                        finished: engine.finished(),
                    };
                    barrier.wait();
                    // Every replica derives the same winner from the same
                    // published costs (strict `<` keeps the lowest index
                    // on ties).
                    let (winner, winner_cost, all_finished) = {
                        let pubs = published.lock().unwrap();
                        let mut w = 0usize;
                        for (i, p) in pubs.iter().enumerate().skip(1) {
                            if p.cost.total_cmp(&pubs[w].cost).is_lt() {
                                w = i;
                            }
                        }
                        if r == 0 && record {
                            // Adoption is a pure function of the published
                            // costs, so one replica can log the round for
                            // everyone.
                            let adopted = pubs
                                .iter()
                                .enumerate()
                                .filter(|&(i, p)| {
                                    i != w && !p.finished && p.cost.total_cmp(&pubs[w].cost).is_gt()
                                })
                                .count();
                            lock_ignoring_poison(exchange_log).push((
                                rounds,
                                w,
                                pubs[w].cost,
                                adopted,
                            ));
                        }
                        (w, pubs[w].cost, pubs.iter().all(|p| p.finished))
                    };
                    if r == winner {
                        *best_slot.lock().unwrap() = Some(problem.snapshot());
                    }
                    barrier.wait();
                    if r != winner && !engine.finished() && my_cost.total_cmp(&winner_cost).is_gt()
                    {
                        let slot = best_slot.lock().unwrap();
                        problem.adopt(slot.as_ref().expect("winner published a snapshot"));
                        adoptions += 1;
                    }
                    if let Some(buffer) = &buffer {
                        let batch = buffer.drain();
                        if !batch.is_empty() {
                            lock_ignoring_poison(journal_batches).push((rounds as u64, r, batch));
                        }
                    }
                    rounds += 1;
                    // Hold every replica until adoptions are done, so the
                    // winner cannot overwrite the slot next round while a
                    // loser still reads it.
                    barrier.wait();
                    if all_finished {
                        break;
                    }
                }
                let outcome = engine.outcome(&problem);
                let final_cost = outcome.final_cost;
                if let Some(buffer) = &buffer {
                    let tail = buffer.drain();
                    if !tail.is_empty() {
                        lock_ignoring_poison(journal_batches).push((u64::MAX, r, tail));
                    }
                    obs.with_session(|s| {
                        lock_ignoring_poison(replica_metrics).push((
                            r,
                            std::mem::take(&mut s.metrics),
                            std::mem::take(&mut s.profiler),
                        ));
                    });
                }
                (outcome, adoptions, final_cost, problem.snapshot(), rounds)
            }));
        }
        for (r, handle) in handles.into_iter().enumerate() {
            results[r] = Some(match handle.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            });
        }
    });

    if record {
        // Deterministic merge: batches ordered by (round, replica), with
        // each round's exchange summary emitted after the round's events.
        // Sequence numbers are re-stamped by the caller's session; span
        // ids and replica attribution survive verbatim.
        let mut batches = journal_batches
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        batches.sort_by_key(|&(round, replica, _)| (round, replica));
        let mut exchange_rounds = exchange_log
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        exchange_rounds.sort_unstable_by_key(|&(round, ..)| round);
        let mut exchange_iter = exchange_rounds.into_iter().peekable();
        obs.with_session(|s| {
            let mut last_round: Option<u64> = None;
            for (round, _, batch) in &batches {
                if let Some(done) = last_round.filter(|&done| done != *round) {
                    while let Some(&(er, winner, cost, adopted)) = exchange_iter.peek() {
                        if er as u64 > done {
                            break;
                        }
                        exchange_iter.next();
                        s.emit(&Event::Exchange {
                            round: er,
                            winner,
                            winner_cost: cost,
                            adopted,
                        });
                    }
                }
                last_round = Some(*round);
                for (event, meta) in batch {
                    s.emit_replayed(event, meta);
                }
            }
            for (round, winner, cost, adopted) in exchange_iter {
                s.emit(&Event::Exchange {
                    round,
                    winner,
                    winner_cost: cost,
                    adopted,
                });
            }
        });
        let mut merged = replica_metrics
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        merged.sort_by_key(|&(r, ..)| r);
        obs.with_session(|s| {
            for (_, metrics, profiler) in &merged {
                s.metrics.absorb(metrics);
                s.profiler.absorb(profiler);
            }
        });
    }

    let mut best_replica = 0usize;
    let mut exchanges = 0usize;
    let mut reports = Vec::with_capacity(replicas);
    let mut snapshots = Vec::with_capacity(replicas);
    let mut costs = Vec::with_capacity(replicas);
    for (r, slot) in results.into_iter().enumerate() {
        let (outcome, adoptions, final_cost, snapshot, rounds) =
            slot.expect("every replica joined");
        reports.push(ReplicaReport { outcome, adoptions });
        snapshots.push(Some(snapshot));
        costs.push(final_cost);
        if costs[r].total_cmp(&costs[best_replica]).is_lt() {
            best_replica = r;
        }
        exchanges = rounds;
    }
    ParallelOutcome {
        best_replica,
        best: snapshots[best_replica].take().expect("snapshot present"),
        best_cost: costs[best_replica],
        exchanges,
        replicas: reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::anneal;

    /// Toy replica problem: minimize squared distance from a target vector,
    /// with the vector itself as the exchanged snapshot.
    struct Toy {
        x: Vec<i64>,
        target: Vec<i64>,
    }

    impl Toy {
        fn new(n: usize) -> Toy {
            Toy {
                x: vec![0; n],
                target: (0..n as i64).collect(),
            }
        }
        fn cost_of(&self) -> f64 {
            self.x
                .iter()
                .zip(&self.target)
                .map(|(a, b)| ((a - b) * (a - b)) as f64)
                .sum()
        }
    }

    impl AnnealProblem for Toy {
        type Applied = (usize, i64);

        fn propose_and_apply(&mut self, rng: &mut StdRng) -> (Self::Applied, f64) {
            let i = rng.gen_range(0..self.x.len());
            let step = if rng.gen_bool(0.5) { 1 } else { -1 };
            let before = self.cost_of();
            self.x[i] += step;
            ((i, step), self.cost_of() - before)
        }

        fn undo(&mut self, (i, step): Self::Applied) {
            self.x[i] -= step;
        }

        fn commit(&mut self, _applied: Self::Applied) {}

        fn cost(&self) -> f64 {
            self.cost_of()
        }
    }

    impl ReplicaProblem for Toy {
        type Snapshot = Vec<i64>;

        fn snapshot(&self) -> Vec<i64> {
            self.x.clone()
        }

        fn adopt(&mut self, snapshot: &Vec<i64>) {
            self.x.clone_from(snapshot);
        }
    }

    fn cfg(seed: u64) -> AnnealConfig {
        AnnealConfig {
            seed,
            max_temps: 20,
            ..AnnealConfig::fast()
        }
    }

    fn run(seed: u64, k: usize) -> ParallelOutcome<Vec<i64>> {
        anneal_parallel(|_| Toy::new(8), k, &cfg(seed), &ParallelConfig::default())
    }

    #[test]
    fn single_replica_is_bit_identical_to_the_sequential_engine() {
        let mut seq = Toy::new(8);
        let sequential = anneal(&mut seq, &cfg(11), |_| {});
        let par = run(11, 1);
        assert_eq!(par.best_replica, 0);
        assert_eq!(par.exchanges, 0);
        assert_eq!(par.best, seq.x);
        assert_eq!(par.best_cost, sequential.final_cost);
        let rep = &par.replicas[0].outcome;
        assert_eq!(rep.total_moves, sequential.total_moves);
        assert_eq!(rep.history, sequential.history);
    }

    #[test]
    fn parallel_runs_are_deterministic_in_seed_and_replica_count() {
        for k in [2, 3] {
            let a = run(5, k);
            let b = run(5, k);
            assert_eq!(a.best_replica, b.best_replica);
            assert_eq!(a.best, b.best);
            assert_eq!(a.best_cost, b.best_cost);
            assert_eq!(a.exchanges, b.exchanges);
            for (x, y) in a.replicas.iter().zip(&b.replicas) {
                assert_eq!(x.adoptions, y.adoptions);
                assert_eq!(x.outcome.total_moves, y.outcome.total_moves);
                assert_eq!(x.outcome.final_cost, y.outcome.final_cost);
                assert_eq!(x.outcome.history, y.outcome.history);
            }
        }
    }

    #[test]
    fn replicas_use_distinct_rng_streams() {
        let out = run(5, 3);
        assert_eq!(out.replicas.len(), 3);
        // Different streams explore differently: the full per-temperature
        // histories cannot all coincide.
        let h0 = &out.replicas[0].outcome.history;
        assert!(
            out.replicas[1..].iter().any(|r| r.outcome.history != *h0),
            "replica walks are identical; streams are correlated"
        );
        assert_ne!(replica_seed(5, 0), replica_seed(5, 1));
        assert_eq!(replica_seed(5, 0), 5);
    }

    #[test]
    fn exchange_spreads_the_best_layout() {
        // On a convex toy landscape every replica converges to the
        // optimum; the point here is that the exchange machinery ran and
        // the reported best matches the best replica's final state.
        let out = run(9, 3);
        assert!(out.exchanges > 0);
        let best = &out.replicas[out.best_replica].outcome;
        assert_eq!(out.best_cost, best.final_cost);
        for r in &out.replicas {
            assert!(out.best_cost <= r.outcome.final_cost);
        }
    }

    /// Journal text with wall-clock fields removed, for determinism
    /// comparisons.
    fn normalized_journal(lines: &[String]) -> Vec<String> {
        lines
            .iter()
            .map(|line| rowfpga_obs::json::parse(line).expect("journal line parses"))
            .map(|doc| match doc {
                rowfpga_obs::Json::Obj(pairs) => rowfpga_obs::Json::Obj(
                    pairs
                        .into_iter()
                        .filter(|(k, _)| k != "elapsed_us" && k != "runtime_sec")
                        .collect(),
                )
                .to_string_compact(),
                other => other.to_string_compact(),
            })
            .collect()
    }

    #[test]
    fn observed_parallel_journals_merge_deterministically() {
        let observed_run = |seed: u64, k: usize| {
            let ring = rowfpga_obs::RingSink::new(1 << 16);
            let obs = Obs::with_sink(Box::new(ring.clone()));
            let out = obs.span("anneal", || {
                anneal_parallel_observed(
                    |_| Toy::new(8),
                    k,
                    &cfg(seed),
                    &ParallelConfig::default(),
                    &obs,
                )
            });
            (out, ring.snapshot())
        };

        let (out_a, lines_a) = observed_run(5, 3);
        let (_out_b, lines_b) = observed_run(5, 3);
        // The merged journal is a pure function of (seed, K) apart from
        // wall-clock durations.
        assert_eq!(normalized_journal(&lines_a), normalized_journal(&lines_b));

        // Recording must not perturb the search itself.
        let plain = run(5, 3);
        assert_eq!(out_a.best_replica, plain.best_replica);
        assert_eq!(out_a.best, plain.best);
        assert_eq!(out_a.best_cost, plain.best_cost);
        assert_eq!(out_a.exchanges, plain.exchanges);

        // Replica attribution, span namespacing, exchange rounds, and a
        // monotonic sequence all survive the merge.
        let docs: Vec<_> = lines_a
            .iter()
            .map(|l| rowfpga_obs::json::parse(l).unwrap())
            .collect();
        let metas: Vec<EventMeta> = docs.iter().map(EventMeta::from_json).collect();
        for (i, m) in metas.iter().enumerate() {
            assert_eq!(m.seq, i as u64 + 1, "merged seq is monotonic");
        }
        let replicas_seen: std::collections::BTreeSet<u32> =
            metas.iter().map(|m| m.replica).collect();
        assert!(
            replicas_seen.contains(&1) && replicas_seen.contains(&3),
            "replica streams attributed: {replicas_seen:?}"
        );
        for m in &metas {
            if m.replica > 0 && m.span != 0 {
                assert_eq!(m.span >> 32, u64::from(m.replica), "span namespacing");
            }
        }
        let exchange_count = docs
            .iter()
            .filter(|d| d.get("event").and_then(rowfpga_obs::Json::as_str) == Some("exchange"))
            .count();
        assert_eq!(exchange_count, out_a.exchanges);
    }

    #[test]
    fn observed_parallel_merges_replica_metrics() {
        let ring = rowfpga_obs::RingSink::new(1 << 16);
        let obs = Obs::with_sink(Box::new(ring.clone()));
        let out = anneal_parallel_observed(
            |_| Toy::new(8),
            2,
            &cfg(7),
            &ParallelConfig::default(),
            &obs,
        );
        let total_moves: usize = out.replicas.iter().map(|r| r.outcome.total_moves).sum();
        let counted = obs
            .with_session(|s| {
                s.metrics.counter("anneal.moves") + s.metrics.counter("anneal.warmup_moves")
            })
            .unwrap();
        assert_eq!(counted as usize, total_moves);
        let temp_calls = obs
            .with_session(|s| s.profiler.total("anneal.temperature").map(|t| t.calls))
            .unwrap()
            .unwrap_or(0);
        assert!(temp_calls > 0, "replica phase totals absorbed");
    }

    #[test]
    fn best_replica_ties_break_to_the_lowest_index() {
        // All replicas reach cost 0 on this easy landscape.
        let out = anneal_parallel(
            |_| Toy::new(4),
            3,
            &AnnealConfig {
                seed: 3,
                ..AnnealConfig::default()
            },
            &ParallelConfig::default(),
        );
        if out
            .replicas
            .iter()
            .all(|r| r.outcome.final_cost == out.best_cost)
        {
            assert_eq!(out.best_replica, 0);
        }
    }
}
