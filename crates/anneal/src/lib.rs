//! Generic simulated annealing with an adaptive cooling schedule.
//!
//! The engine implements the scheme of Huang, Romeo and
//! Sangiovanni-Vincentelli (*An Efficient Cooling Schedule for Simulated
//! Annealing*, ICCAD 1986), the schedule the paper's layout tool uses
//! (§3.2): the starting temperature, the temperature decrements and the
//! termination test are all derived at runtime from the observed cost
//! statistics rather than fixed a priori:
//!
//! * **T₀** is set so that the average uphill move observed during a warmup
//!   random walk is accepted with a target probability χ₀;
//! * **decrements** follow `T' = T · exp(−λ·T/σ_T)`, where `σ_T` is the
//!   cost standard deviation measured *at* temperature `T` — rough
//!   landscapes cool slowly, smooth ones quickly — clamped so `T'` never
//!   falls below a fixed fraction of `T`;
//! * **termination** fires when the acceptance ratio stays below a floor
//!   for several consecutive temperatures (the walk has frozen), when the
//!   cost variance vanishes, or at a temperature-count safety bound.
//!
//! Problems implement [`AnnealProblem`]: moves are *applied speculatively*,
//! then either committed or undone, which lets layout problems journal
//! arbitrarily complex side effects (rip-up and reroute cascades) per move.
//!
//! The engine comes in two shapes. [`anneal`] / [`anneal_obs`] run the whole
//! schedule in one call. The step-driven [`Annealer`] exposes one
//! temperature per [`Annealer::step`] call, with the complete schedule state
//! between steps captured as a plain-data [`AnnealCursor`] — the hook the
//! resilience layer uses for checkpointing, deadlines and mid-run audits.
//!
//! [`anneal_parallel`] runs `K` replicas of a [`ReplicaProblem`]
//! concurrently on `std::thread`s with periodic best-layout exchange at
//! temperature boundaries — deterministic in `(seed, K)`, and bit-identical
//! to the sequential engine at `K = 1`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rowfpga_obs::{Event, Obs, TemperatureRecord};

mod parallel;

pub use parallel::{
    anneal_parallel, anneal_parallel_observed, replica_seed, ParallelConfig, ParallelOutcome,
    ReplicaProblem, ReplicaReport,
};

/// A combinatorial problem optimizable by the annealing engine.
pub trait AnnealProblem {
    /// Record of one applied move, carrying whatever the problem needs to
    /// undo or finalize it.
    type Applied;

    /// Proposes a random move, applies it speculatively, and returns the
    /// applied-move record together with the cost delta it produced.
    fn propose_and_apply(&mut self, rng: &mut StdRng) -> (Self::Applied, f64);

    /// Reverts a speculatively applied move.
    fn undo(&mut self, applied: Self::Applied);

    /// Finalizes an accepted move (e.g. discards undo journals).
    fn commit(&mut self, applied: Self::Applied);

    /// The current total cost.
    fn cost(&self) -> f64;

    /// Hook invoked after every temperature with that temperature's
    /// statistics; problems use it to adapt cost weights or record
    /// dynamics traces.
    fn on_temperature(&mut self, _stats: &TemperatureStats) {}
}

/// Statistics of one temperature step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TemperatureStats {
    /// Index of the temperature step (0 = first after warmup).
    pub index: usize,
    /// The temperature.
    pub temperature: f64,
    /// Moves attempted at this temperature.
    pub moves: usize,
    /// Moves accepted.
    pub accepted: usize,
    /// Mean cost over the attempted moves.
    pub mean_cost: f64,
    /// Cost standard deviation over the attempted moves.
    pub std_cost: f64,
    /// Cost at the end of the temperature.
    pub current_cost: f64,
    /// Best cost seen so far in the whole run.
    pub best_cost: f64,
}

impl TemperatureStats {
    /// Fraction of attempted moves that were accepted.
    pub fn acceptance_ratio(&self) -> f64 {
        if self.moves == 0 {
            0.0
        } else {
            self.accepted as f64 / self.moves as f64
        }
    }
}

/// Engine configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct AnnealConfig {
    /// Moves attempted at every temperature.
    pub moves_per_temp: usize,
    /// Warmup moves used to derive T₀ (accepted unconditionally).
    pub warmup_moves: usize,
    /// Target acceptance probability of the average uphill warmup move.
    pub initial_acceptance: f64,
    /// Cooling aggressiveness λ of the HRSV decrement.
    pub lambda: f64,
    /// `T'` never falls below this fraction of `T` in one step.
    pub max_decrement: f64,
    /// Terminate after this many consecutive temperatures whose acceptance
    /// ratio is below [`AnnealConfig::min_acceptance`].
    pub stall_temps: usize,
    /// Acceptance-ratio floor for the frozen test.
    pub min_acceptance: f64,
    /// Safety bound on the number of temperatures.
    pub max_temps: usize,
    /// RNG seed; runs are deterministic in it.
    pub seed: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        Self {
            moves_per_temp: 1000,
            warmup_moves: 200,
            initial_acceptance: 0.85,
            lambda: 0.7,
            max_decrement: 0.5,
            stall_temps: 3,
            min_acceptance: 0.02,
            max_temps: 200,
            seed: 1,
        }
    }
}

impl AnnealConfig {
    /// A quick low-effort profile for tests and smoke runs.
    pub fn fast() -> Self {
        Self {
            moves_per_temp: 200,
            warmup_moves: 50,
            max_temps: 60,
            ..Self::default()
        }
    }

    /// A minimal profile for differential fuzzing: just enough schedule to
    /// exercise warmup, a handful of temperatures and the termination test,
    /// so determinism oracles can run complete anneals thousands of times.
    /// Solution quality is irrelevant at this effort level.
    pub fn smoke() -> Self {
        Self {
            moves_per_temp: 60,
            warmup_moves: 20,
            max_temps: 6,
            stall_temps: 2,
            ..Self::default()
        }
    }

    /// The classic TimberWolf guidance for the per-temperature move budget:
    /// proportional to `n^(4/3)` for `n` movable objects.
    pub fn moves_for_cells(n: usize, factor: f64) -> usize {
        ((n as f64).powf(4.0 / 3.0) * factor).ceil().max(32.0) as usize
    }
}

/// Result of an annealing run.
#[derive(Clone, Debug)]
pub struct AnnealOutcome {
    /// Temperatures executed (excluding warmup).
    pub temperatures: usize,
    /// Total moves attempted (including warmup).
    pub total_moves: usize,
    /// Cost at termination.
    pub final_cost: f64,
    /// Best cost observed during the run.
    pub best_cost: f64,
    /// Per-temperature history.
    pub history: Vec<TemperatureStats>,
}

/// Serializable snapshot of the annealing schedule at a temperature
/// boundary: everything the engine — besides the problem state itself —
/// needs to continue the walk as if it had never stopped. Captured with
/// [`Annealer::cursor`] and fed back through [`Annealer::resume`].
#[derive(Clone, Debug, PartialEq)]
pub struct AnnealCursor {
    /// Raw xoshiro256++ state words of the move/acceptance RNG stream.
    pub rng_state: [u64; 4],
    /// Temperature the next step will run at.
    pub temperature: f64,
    /// Index of the next temperature step (= temperatures completed so far).
    pub next_index: usize,
    /// Consecutive below-floor-acceptance temperatures seen so far.
    pub stalled: usize,
    /// Total moves attempted so far (including warmup).
    pub total_moves: usize,
    /// Best cost observed so far.
    pub best_cost: f64,
    /// Whether the termination test has already fired.
    pub frozen: bool,
}

/// Step-driven annealing engine.
///
/// [`anneal`] and [`anneal_obs`] drive it to completion in one call; callers
/// that need to checkpoint, impose deadlines, or audit incremental state
/// between temperatures instead call [`Annealer::start`] (which runs the
/// warmup walk and derives T₀) and then [`Annealer::step`] once per
/// temperature until [`Annealer::finished`]. The schedule state between
/// steps is a plain-data [`AnnealCursor`]; [`Annealer::resume`] rebuilds an
/// engine from one so a stopped run continues bit-identically — provided
/// the caller has restored the problem state to the same boundary.
#[derive(Debug)]
pub struct Annealer {
    config: AnnealConfig,
    rng: StdRng,
    temperature: f64,
    next_index: usize,
    stalled: usize,
    total_moves: usize,
    best_cost: f64,
    frozen: bool,
    history: Vec<TemperatureStats>,
}

impl Annealer {
    /// Runs the warmup random walk on `problem`, derives the starting
    /// temperature, and returns an engine ready to [`step`](Self::step).
    pub fn start<P: AnnealProblem>(problem: &mut P, config: &AnnealConfig, obs: &Obs) -> Annealer {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut total_moves = 0usize;
        let mut best_cost = problem.cost();

        // Warmup random walk: accept everything, observe uphill deltas.
        obs.span_start("anneal.warmup");
        let mut uphill_sum = 0.0f64;
        let mut uphill_count = 0usize;
        let mut abs_sum = 0.0f64;
        for _ in 0..config.warmup_moves {
            let (applied, delta) = problem.propose_and_apply(&mut rng);
            problem.commit(applied);
            total_moves += 1;
            if delta > 0.0 {
                uphill_sum += delta;
                uphill_count += 1;
            }
            abs_sum += delta.abs();
            best_cost = best_cost.min(problem.cost());
        }
        obs.add("anneal.warmup_moves", config.warmup_moves as u64);
        obs.span_end("anneal.warmup");
        let avg_uphill = if uphill_count > 0 {
            uphill_sum / uphill_count as f64
        } else if config.warmup_moves > 0 {
            (abs_sum / config.warmup_moves as f64).max(1e-12)
        } else {
            1.0
        };
        let chi = config.initial_acceptance.clamp(0.01, 0.99);
        let temperature = (avg_uphill / (1.0 / chi).ln()).max(1e-12);

        Annealer {
            config: config.clone(),
            rng,
            temperature,
            next_index: 0,
            stalled: 0,
            total_moves,
            best_cost,
            frozen: false,
            history: Vec::new(),
        }
    }

    /// Rebuilds an engine from a [`cursor`](Self::cursor) snapshot, skipping
    /// warmup. The caller must restore the problem state to the same
    /// temperature boundary the cursor was captured at.
    pub fn resume(config: &AnnealConfig, cursor: &AnnealCursor) -> Annealer {
        Annealer {
            config: config.clone(),
            rng: StdRng::from_state(cursor.rng_state),
            temperature: cursor.temperature,
            next_index: cursor.next_index,
            stalled: cursor.stalled,
            total_moves: cursor.total_moves,
            best_cost: cursor.best_cost,
            frozen: cursor.frozen,
            history: Vec::new(),
        }
    }

    /// Snapshot of the schedule state at the current temperature boundary.
    pub fn cursor(&self) -> AnnealCursor {
        AnnealCursor {
            rng_state: self.rng.state(),
            temperature: self.temperature,
            next_index: self.next_index,
            stalled: self.stalled,
            total_moves: self.total_moves,
            best_cost: self.best_cost,
            frozen: self.frozen,
        }
    }

    /// Whether the schedule has terminated (frozen, flat, or at the
    /// temperature-count safety bound).
    pub fn finished(&self) -> bool {
        self.frozen || self.next_index >= self.config.max_temps
    }

    /// Temperatures completed over the whole run, including any before a
    /// [`resume`](Self::resume).
    pub fn temperatures_completed(&self) -> usize {
        self.next_index
    }

    /// Total moves attempted over the whole run (including warmup).
    pub fn total_moves(&self) -> usize {
        self.total_moves
    }

    /// Best cost observed over the whole run.
    pub fn best_cost(&self) -> f64 {
        self.best_cost
    }

    /// Per-temperature statistics recorded *this session* (a resumed engine
    /// starts with an empty history).
    pub fn history(&self) -> &[TemperatureStats] {
        &self.history
    }

    /// Runs one temperature: `moves_per_temp` Metropolis moves, the
    /// problem's [`AnnealProblem::on_temperature`] hook, obs counters and a
    /// structured [`Event::Temperature`], then the termination test and the
    /// clamped HRSV decrement. Returns `None` once the schedule has
    /// terminated.
    pub fn step<P: AnnealProblem>(
        &mut self,
        problem: &mut P,
        obs: &Obs,
    ) -> Option<TemperatureStats> {
        if self.finished() {
            return None;
        }
        obs.span_start("anneal.temperature");
        let temperature = self.temperature;
        let mut accepted = 0usize;
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for _ in 0..self.config.moves_per_temp {
            let (applied, delta) = problem.propose_and_apply(&mut self.rng);
            self.total_moves += 1;
            let accept = delta <= 0.0 || self.rng.gen::<f64>() < (-delta / temperature).exp();
            if accept {
                problem.commit(applied);
                accepted += 1;
            } else {
                problem.undo(applied);
            }
            let c = problem.cost();
            sum += c;
            sum_sq += c * c;
            if c < self.best_cost {
                self.best_cost = c;
            }
        }
        let n = self.config.moves_per_temp.max(1) as f64;
        let mean = sum / n;
        let var = (sum_sq / n - mean * mean).max(0.0);
        let std = var.sqrt();
        let stats = TemperatureStats {
            index: self.next_index,
            temperature,
            moves: self.config.moves_per_temp,
            accepted,
            mean_cost: mean,
            std_cost: std,
            current_cost: problem.cost(),
            best_cost: self.best_cost,
        };
        problem.on_temperature(&stats);
        obs.add("anneal.moves", stats.moves as u64);
        obs.add("anneal.accepted", stats.accepted as u64);
        obs.add("anneal.rejected", (stats.moves - stats.accepted) as u64);
        obs.emit(Event::Temperature(TemperatureRecord {
            index: stats.index,
            temperature: stats.temperature,
            moves: stats.moves,
            accepted: stats.accepted,
            mean_cost: stats.mean_cost,
            std_cost: stats.std_cost,
            current_cost: stats.current_cost,
            best_cost: stats.best_cost,
        }));
        self.history.push(stats);
        obs.span_end("anneal.temperature");
        self.next_index += 1;

        // Frozen test.
        if stats.acceptance_ratio() < self.config.min_acceptance {
            self.stalled += 1;
            if self.stalled >= self.config.stall_temps {
                self.frozen = true;
            }
        } else {
            self.stalled = 0;
        }
        if !self.frozen {
            if std <= f64::EPSILON {
                self.frozen = true;
            } else {
                // HRSV decrement, clamped.
                let next = temperature * (-self.config.lambda * temperature / std).exp();
                self.temperature = next.max(temperature * self.config.max_decrement);
            }
        }
        Some(stats)
    }

    /// Packages the run summary. `temperatures` counts this session's
    /// history (identical to the whole run when the engine was not resumed).
    pub fn outcome<P: AnnealProblem>(&self, problem: &P) -> AnnealOutcome {
        AnnealOutcome {
            temperatures: self.history.len(),
            total_moves: self.total_moves,
            final_cost: problem.cost(),
            best_cost: self.best_cost,
            history: self.history.clone(),
        }
    }
}

/// Runs the annealing engine on `problem`.
///
/// `observer` is called once per temperature (after the problem's own
/// [`AnnealProblem::on_temperature`] hook) — useful for logging and for
/// recording dynamics traces.
pub fn anneal<P: AnnealProblem>(
    problem: &mut P,
    config: &AnnealConfig,
    observer: impl FnMut(&TemperatureStats),
) -> AnnealOutcome {
    anneal_obs(problem, config, observer, &Obs::disabled())
}

/// Like [`anneal`], with an observability handle: phase spans (`warmup`,
/// `temperature`), move counters and one structured
/// [`Event::Temperature`] per temperature flow into `obs`. A disabled
/// handle makes this identical to [`anneal`].
pub fn anneal_obs<P: AnnealProblem>(
    problem: &mut P,
    config: &AnnealConfig,
    mut observer: impl FnMut(&TemperatureStats),
    obs: &Obs,
) -> AnnealOutcome {
    let mut engine = Annealer::start(problem, config, obs);
    while let Some(stats) = engine.step(problem, obs) {
        observer(&stats);
    }
    engine.outcome(problem)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy problem: minimize the squared distance of a vector of integers
    /// from a target vector; moves tweak one coordinate by ±1.
    struct Toy {
        x: Vec<i64>,
        target: Vec<i64>,
    }

    impl Toy {
        fn new(n: usize) -> Toy {
            Toy {
                x: vec![0; n],
                target: (0..n as i64).collect(),
            }
        }
        fn cost_of(&self) -> f64 {
            self.x
                .iter()
                .zip(&self.target)
                .map(|(a, b)| ((a - b) * (a - b)) as f64)
                .sum()
        }
    }

    impl AnnealProblem for Toy {
        type Applied = (usize, i64);

        fn propose_and_apply(&mut self, rng: &mut StdRng) -> (Self::Applied, f64) {
            let i = rng.gen_range(0..self.x.len());
            let step = if rng.gen_bool(0.5) { 1 } else { -1 };
            let before = self.cost_of();
            self.x[i] += step;
            ((i, step), self.cost_of() - before)
        }

        fn undo(&mut self, (i, step): Self::Applied) {
            self.x[i] -= step;
        }

        fn commit(&mut self, _applied: Self::Applied) {}

        fn cost(&self) -> f64 {
            self.cost_of()
        }
    }

    #[test]
    fn toy_problem_converges_to_optimum() {
        let mut toy = Toy::new(8);
        let out = anneal(&mut toy, &AnnealConfig::default(), |_| {});
        assert_eq!(out.final_cost, 0.0, "x = {:?}", toy.x);
        assert_eq!(out.best_cost, 0.0);
        assert!(out.temperatures >= 2);
    }

    #[test]
    fn runs_are_deterministic_in_seed() {
        let run = |seed| {
            let mut toy = Toy::new(6);
            let out = anneal(
                &mut toy,
                &AnnealConfig {
                    seed,
                    max_temps: 20,
                    ..AnnealConfig::fast()
                },
                |_| {},
            );
            (out.final_cost, out.total_moves, toy.x)
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn temperature_decreases_monotonically() {
        let mut toy = Toy::new(10);
        let out = anneal(&mut toy, &AnnealConfig::fast(), |_| {});
        for w in out.history.windows(2) {
            assert!(w[1].temperature < w[0].temperature);
            assert!(
                w[1].temperature >= w[0].temperature * 0.5 - 1e-12,
                "decrement clamp violated"
            );
        }
    }

    #[test]
    fn observer_sees_every_temperature() {
        let mut toy = Toy::new(4);
        let mut seen = 0usize;
        let out = anneal(&mut toy, &AnnealConfig::fast(), |s| {
            assert_eq!(s.index, seen);
            seen += 1;
        });
        assert_eq!(seen, out.temperatures);
    }

    #[test]
    fn acceptance_starts_high_and_freezes() {
        let mut toy = Toy::new(12);
        let out = anneal(&mut toy, &AnnealConfig::default(), |_| {});
        let first = out.history.first().unwrap();
        let last = out.history.last().unwrap();
        assert!(
            first.acceptance_ratio() > 0.5,
            "hot regime should accept freely ({})",
            first.acceptance_ratio()
        );
        assert!(
            last.acceptance_ratio() < first.acceptance_ratio(),
            "acceptance must fall as the walk freezes"
        );
    }

    #[test]
    fn obs_handle_records_moves_spans_and_temperature_events() {
        use std::cell::Cell;
        use std::rc::Rc;

        struct CountTemps(Rc<Cell<usize>>);
        impl rowfpga_obs::Recorder for CountTemps {
            fn record(&mut self, event: &Event) {
                if matches!(event, Event::Temperature(_)) {
                    self.0.set(self.0.get() + 1);
                }
            }
        }

        let temps_seen = Rc::new(Cell::new(0usize));
        let obs = Obs::with_sink(Box::new(CountTemps(temps_seen.clone())));
        let mut toy = Toy::new(6);
        let out = anneal_obs(&mut toy, &AnnealConfig::fast(), |_| {}, &obs);

        assert_eq!(temps_seen.get(), out.temperatures);
        obs.with_session(|s| {
            assert_eq!(
                s.metrics.counter("anneal.moves") + s.metrics.counter("anneal.warmup_moves"),
                out.total_moves as u64
            );
            assert_eq!(
                s.metrics.counter("anneal.accepted") + s.metrics.counter("anneal.rejected"),
                s.metrics.counter("anneal.moves")
            );
            assert_eq!(s.profiler.total("anneal.warmup").unwrap().calls, 1);
            assert_eq!(
                s.profiler.total("anneal.temperature").unwrap().calls,
                out.temperatures as u64
            );
        })
        .unwrap();
    }

    #[test]
    fn disabled_obs_changes_nothing() {
        let run = |obs: &Obs| {
            let mut toy = Toy::new(6);
            let out = anneal_obs(&mut toy, &AnnealConfig::fast(), |_| {}, obs);
            (out.final_cost, out.total_moves, toy.x)
        };
        assert_eq!(run(&Obs::disabled()), run(&Obs::metrics_only()));
    }

    #[test]
    fn moves_for_cells_scales_superlinearly() {
        let small = AnnealConfig::moves_for_cells(100, 1.0);
        let large = AnnealConfig::moves_for_cells(200, 1.0);
        assert!(large as f64 > 2.0 * small as f64 * 0.9);
        assert!(AnnealConfig::moves_for_cells(1, 1.0) >= 32);
    }

    #[test]
    fn rejected_moves_are_undone() {
        // With an ultra-cold start the run is a greedy descent: the final
        // cost can never exceed the starting cost.
        struct Watch(Toy);
        impl AnnealProblem for Watch {
            type Applied = (usize, i64);
            fn propose_and_apply(&mut self, rng: &mut StdRng) -> (Self::Applied, f64) {
                self.0.propose_and_apply(rng)
            }
            fn undo(&mut self, a: Self::Applied) {
                self.0.undo(a)
            }
            fn commit(&mut self, a: Self::Applied) {
                self.0.commit(a)
            }
            fn cost(&self) -> f64 {
                self.0.cost()
            }
        }
        let mut w = Watch(Toy::new(5));
        let out = anneal(
            &mut w,
            &AnnealConfig {
                warmup_moves: 0,
                initial_acceptance: 0.01, // ultra-cold start: greedy descent
                moves_per_temp: 500,
                max_temps: 10,
                ..AnnealConfig::default()
            },
            |_| {},
        );
        // greedy descent from x=0 toward the target strictly improves
        assert!(out.final_cost <= 140.0); // initial cost = 0²+1²+…+4² = 30… always ≤ start
        assert_eq!(out.final_cost, w.cost());
    }

    #[test]
    fn step_driven_engine_matches_monolithic_run() {
        let cfg = AnnealConfig {
            max_temps: 25,
            ..AnnealConfig::fast()
        };
        let mut a = Toy::new(7);
        let whole = anneal(&mut a, &cfg, |_| {});

        let mut b = Toy::new(7);
        let obs = Obs::disabled();
        let mut engine = Annealer::start(&mut b, &cfg, &obs);
        while engine.step(&mut b, &obs).is_some() {}
        let stepped = engine.outcome(&b);

        assert_eq!(whole.temperatures, stepped.temperatures);
        assert_eq!(whole.total_moves, stepped.total_moves);
        assert_eq!(whole.final_cost, stepped.final_cost);
        assert_eq!(whole.best_cost, stepped.best_cost);
        assert_eq!(whole.history, stepped.history);
        assert_eq!(a.x, b.x);
    }

    #[test]
    fn cursor_resume_is_bit_identical_to_uninterrupted_run() {
        let cfg = AnnealConfig {
            max_temps: 30,
            ..AnnealConfig::fast()
        };
        let obs = Obs::disabled();

        // Uninterrupted reference run.
        let mut r = Toy::new(9);
        let mut reference = Annealer::start(&mut r, &cfg, &obs);
        while reference.step(&mut r, &obs).is_some() {}

        // Stop after 5 temperatures, capture the cursor, rebuild the
        // problem state (Toy state survives in place here; the layout
        // engine reconstructs it from the snapshot) and resume.
        let mut s = Toy::new(9);
        let mut first = Annealer::start(&mut s, &cfg, &obs);
        for _ in 0..5 {
            assert!(first.step(&mut s, &obs).is_some());
        }
        let cursor = first.cursor();
        drop(first);
        let mut second = Annealer::resume(&cfg, &cursor);
        while second.step(&mut s, &obs).is_some() {}

        assert_eq!(r.x, s.x);
        assert_eq!(
            reference.temperatures_completed(),
            second.temperatures_completed()
        );
        assert_eq!(reference.total_moves(), second.total_moves());
        assert_eq!(reference.best_cost(), second.best_cost());
        assert_eq!(reference.cursor(), second.cursor());
    }

    #[test]
    fn resuming_a_frozen_cursor_steps_zero_times() {
        let cfg = AnnealConfig::fast();
        let obs = Obs::disabled();
        let mut toy = Toy::new(5);
        let mut engine = Annealer::start(&mut toy, &cfg, &obs);
        while engine.step(&mut toy, &obs).is_some() {}
        assert!(engine.finished());
        let cursor = engine.cursor();
        let mut resumed = Annealer::resume(&cfg, &cursor);
        assert!(resumed.finished());
        assert!(resumed.step(&mut toy, &obs).is_none());
    }
}
