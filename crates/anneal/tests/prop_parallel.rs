//! Property test for multi-replica determinism: for any base seed and
//! replica count, two parallel runs produce identical outcomes — thread
//! scheduling must not be observable.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

use rowfpga_anneal::{
    anneal_parallel, AnnealConfig, AnnealProblem, ParallelConfig, ParallelOutcome, ReplicaProblem,
};

/// Minimize squared distance from a target vector; the vector itself is
/// the exchanged snapshot.
struct Toy {
    x: Vec<i64>,
    target: Vec<i64>,
}

impl Toy {
    fn new(n: usize) -> Toy {
        Toy {
            x: vec![0; n],
            target: (0..n as i64).collect(),
        }
    }
    fn cost_of(&self) -> f64 {
        self.x
            .iter()
            .zip(&self.target)
            .map(|(a, b)| ((a - b) * (a - b)) as f64)
            .sum()
    }
}

impl AnnealProblem for Toy {
    type Applied = (usize, i64);

    fn propose_and_apply(&mut self, rng: &mut StdRng) -> (Self::Applied, f64) {
        let i = rng.gen_range(0..self.x.len());
        let step = if rng.gen_bool(0.5) { 1 } else { -1 };
        let before = self.cost_of();
        self.x[i] += step;
        ((i, step), self.cost_of() - before)
    }

    fn undo(&mut self, (i, step): Self::Applied) {
        self.x[i] -= step;
    }

    fn commit(&mut self, _applied: Self::Applied) {}

    fn cost(&self) -> f64 {
        self.cost_of()
    }
}

impl ReplicaProblem for Toy {
    type Snapshot = Vec<i64>;

    fn snapshot(&self) -> Vec<i64> {
        self.x.clone()
    }

    fn adopt(&mut self, snapshot: &Vec<i64>) {
        self.x.clone_from(snapshot);
    }
}

fn run(seed: u64, k: usize, exchange_every: usize) -> ParallelOutcome<Vec<i64>> {
    let cfg = AnnealConfig {
        seed,
        max_temps: 15,
        ..AnnealConfig::fast()
    };
    anneal_parallel(|_| Toy::new(6), k, &cfg, &ParallelConfig { exchange_every })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Two runs with the same (seed, K, cadence) are indistinguishable.
    #[test]
    fn parallel_outcome_is_a_pure_function_of_seed_and_replicas(
        seed in 0u64..10_000,
        k in 1usize..4,
        exchange_every in 1usize..6,
    ) {
        let a = run(seed, k, exchange_every);
        let b = run(seed, k, exchange_every);
        prop_assert_eq!(a.best_replica, b.best_replica);
        prop_assert_eq!(a.best, b.best);
        prop_assert!(a.best_cost == b.best_cost);
        prop_assert_eq!(a.exchanges, b.exchanges);
        prop_assert_eq!(a.replicas.len(), k);
        for (x, y) in a.replicas.iter().zip(&b.replicas) {
            prop_assert_eq!(x.adoptions, y.adoptions);
            prop_assert_eq!(x.outcome.total_moves, y.outcome.total_moves);
            prop_assert_eq!(&x.outcome.history, &y.outcome.history);
        }
    }
}
