//! Collection strategies (`proptest::collection::vec`).

use rand::rngs::StdRng;
use rand::Rng as _;

use crate::strategy::Strategy;

/// Strategy for vectors with element strategy `S` and length in `len`.
pub struct VecStrategy<S> {
    elem: S,
    len: core::ops::Range<usize>,
}

impl<S> std::fmt::Debug for VecStrategy<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VecStrategy")
            .field("len", &self.len)
            .finish_non_exhaustive()
    }
}

/// Generates `Vec`s whose length is drawn from `len` and whose elements are
/// drawn from `elem`.
pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { elem, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}
