//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::Rng as _;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

/// Boxes a strategy (used by the `prop_oneof!` macro).
pub fn boxed_strategy<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        (**self).generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies of one value type.
pub struct OneOf<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> std::fmt::Debug for OneOf<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OneOf")
            .field("options", &self.options.len())
            .finish()
    }
}

impl<V> OneOf<V> {
    /// Creates the union; `options` must be non-empty.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> OneOf<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_uints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

arbitrary_uints!(u64, u32, u16, u8, usize, i64, i32, i16, i8, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen::<bool>()
    }
}

/// The `any::<T>()` strategy object.
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> std::fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Any<{}>", std::any::type_name::<T>())
    }
}

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}
