//! Offline stand-in for the subset of the crates.io `proptest` API used by
//! this workspace.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This crate keeps the same surface syntax — the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, [`Strategy`] with
//! `prop_map`, `any::<T>()`, ranges and tuples as strategies,
//! [`prop_oneof!`] and `collection::vec` — on top of a deterministic
//! random-case runner. Unlike the real crate there is no shrinking and no
//! failure persistence: cases are derived from a hash of the test name and
//! the case index, so failures reproduce exactly on re-run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;

pub use strategy::{any, boxed_strategy, BoxedStrategy, Just, OneOf, Strategy};

/// A failed property case (carried by `prop_assert!` and friends).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration (only `cases` is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for source compatibility; ignored (no shrinking here).
    pub max_shrink_iters: u32,
    /// Accepted for source compatibility; ignored.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
            max_global_rejects: 1024,
        }
    }
}

/// Deterministic per-case generator: a pure function of the test name and
/// case index, so every failure reproduces on the next run.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9e3779b9))
}

/// Commonly imported names, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig, TestCaseError,
    };
}

/// Defines property tests. Each function is expanded to a `#[test]` that
/// draws its arguments from the given strategies for `config.cases`
/// deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::case_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {case}/{}: {}",
                        stringify!($name),
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the current case (with
/// the deterministic case index in the panic message) if false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError {
                message: format!($($fmt)*),
            });
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed_strategy($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn case_rng_is_deterministic() {
        use rand::Rng as _;
        let mut a = crate::case_rng("t", 3);
        let mut b = crate::case_rng("t", 3);
        let mut c = crate::case_rng("t", 4);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        let _ = c.gen::<u64>();
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 50, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 10usize..20, y in any::<u32>()) {
            prop_assert!((10..20).contains(&x));
            let _ = y;
        }

        #[test]
        fn map_and_tuples_compose(
            pair in (1usize..5, 1usize..5).prop_map(|(a, b)| a * b),
            v in collection::vec(0usize..3, 2..6),
        ) {
            prop_assert!((1..=16).contains(&pair));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|e| *e < 3));
        }

        #[test]
        fn oneof_selects_all_arms(x in prop_oneof![Just(1usize), Just(2usize), 3usize..5]) {
            prop_assert!((1..5).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "property `failing` failed at case")]
    fn failures_report_the_case() {
        proptest! {
            fn failing(x in 0usize..10) {
                prop_assert!(x < 5, "x was {x}");
            }
        }
        failing();
    }
}
