//! Facade crate re-exporting the full rowfpga API.
//!
//! See the workspace README for an overview. Most users want
//! [`core::SimultaneousPlaceRoute`] (the paper's algorithm) or
//! [`baseline::SequentialPlaceRoute`] (the traditional flow it is compared
//! against), plus [`arch`] and [`netlist`] to describe the problem.

#![forbid(unsafe_code)]

pub use rowfpga_anneal as anneal;
pub use rowfpga_arch as arch;
pub use rowfpga_baseline as baseline;
pub use rowfpga_core as core;
pub use rowfpga_netlist as netlist;
pub use rowfpga_place as place;
pub use rowfpga_route as route;
pub use rowfpga_timing as timing;
