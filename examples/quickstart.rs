//! Quickstart: lay out a small design with the simultaneous flow.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rowfpga::core::{size_architecture, SimPrConfig, SimultaneousPlaceRoute, SizingConfig};
use rowfpga::netlist::{generate, GenerateConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A technology-mapped netlist. Real designs arrive through
    //    `parse_netlist` / `parse_blif`; here we synthesize one.
    let netlist = generate(&GenerateConfig {
        num_cells: 120,
        num_inputs: 8,
        num_outputs: 8,
        num_seq: 8,
        seed: 42,
        ..GenerateConfig::default()
    });
    let stats = netlist.stats();
    println!(
        "design: {} cells ({} comb, {} seq, {} PI, {} PO), {} nets, max fanout {}",
        stats.num_cells,
        stats.num_comb,
        stats.num_seq,
        stats.num_inputs,
        stats.num_outputs,
        stats.num_nets,
        stats.max_fanout
    );

    // 2. A row-based fabric sized for it.
    let arch = size_architecture(&netlist, &SizingConfig::default())?;
    let astats = arch.stats();
    println!(
        "fabric: {} rows x {} cols, {} tracks/channel, {} horizontal / {} vertical segments",
        arch.geometry().num_rows(),
        arch.geometry().num_cols(),
        astats.tracks_per_channel,
        astats.num_hsegs,
        astats.num_vsegs
    );

    // 3. Simultaneous placement, global and detailed routing.
    let result = SimultaneousPlaceRoute::new(SimPrConfig::default()).run(&arch, &netlist)?;
    println!(
        "layout: routed={} | worst path {:.2} ns | {} temperatures, {} moves, {:.2?}",
        result.fully_routed,
        result.worst_delay / 1000.0,
        result.temperatures,
        result.total_moves,
        result.runtime
    );

    // 4. Inspect the critical path.
    println!(
        "critical path ({} cells):",
        result.critical_path.elements.len()
    );
    for e in &result.critical_path.elements {
        let cell = netlist.cell(e.cell);
        println!(
            "  {:<10} {:<7} arrives {:>8.2} ns",
            cell.name(),
            cell.kind().to_string(),
            e.arrival / 1000.0
        );
    }
    Ok(())
}
