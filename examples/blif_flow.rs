//! Layout from a BLIF netlist: parse, size a fabric, place and route.
//!
//! Reads a technology-mapped BLIF file given on the command line, or a
//! built-in toy FSM when none is given.
//!
//! ```sh
//! cargo run --release --example blif_flow [design.blif]
//! ```

use rowfpga::core::{size_architecture, SimPrConfig, SimultaneousPlaceRoute, SizingConfig};
use rowfpga::netlist::{parse_blif, write_netlist};

/// A small mapped FSM in BLIF (a 2-bit sequence detector).
const TOY: &str = "\
.model detector
.inputs in rst
.outputs hit
.names in s0 n0
11 1
.names in s1 n1
01 1
.names rst n0 d0
01 1
.names rst n1 d1
01 1
.latch d0 s0 re clk 0
.latch d1 s1 re clk 0
.names s0 s1 in hit
111 1
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => TOY.to_owned(),
    };
    let netlist = parse_blif(&text)?;
    let stats = netlist.stats();
    println!(
        "parsed: {} cells ({} comb, {} seq, {} PI, {} PO), {} nets",
        stats.num_cells,
        stats.num_comb,
        stats.num_seq,
        stats.num_inputs,
        stats.num_outputs,
        stats.num_nets
    );

    let arch = size_architecture(&netlist, &SizingConfig::default())?;
    let result = SimultaneousPlaceRoute::new(SimPrConfig::default()).run(&arch, &netlist)?;
    println!(
        "layout: routed={} | worst path {:.2} ns | {:.2?}",
        result.fully_routed,
        result.worst_delay / 1000.0,
        result.runtime
    );

    println!(
        "\nnative-format netlist (round-trippable):\n{}",
        write_netlist(&netlist)
    );
    Ok(())
}
