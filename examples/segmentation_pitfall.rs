//! The Figure 2 anecdote, interactively: why wirelength-driven placement
//! cannot see segmented routing resources.
//!
//! Builds the 7-cell, 3-net, 3-segment micro-example of the paper's
//! Figure 2, routes the compact (short-wirelength) placement and the spread
//! (long-wirelength) one, and shows that only the longer one wires — then
//! lets the simultaneous engine find a routable placement on its own.
//!
//! ```sh
//! cargo run --release --example segmentation_pitfall
//! ```

use rowfpga::arch::{Architecture, ColId, RowId, SegmentationScheme};
use rowfpga::core::{SimPrConfig, SimultaneousPlaceRoute};
use rowfpga::netlist::{CellKind, Netlist, PortSide};
use rowfpga::place::{hpwl, Placement};
use rowfpga::route::{route_batch, RouterConfig, RoutingState};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One logic row; the channel below it has two tracks holding three
    // segments: track 0 full-length, track 1 split at column 6.
    let arch = Architecture::builder()
        .rows(1)
        .cols(12)
        .io_columns(2)
        .segmentation(SegmentationScheme::Explicit {
            tracks: vec![vec![], vec![6]],
        })
        .build()?;

    let mut b = Netlist::builder();
    let x = b.add_cell("X", CellKind::Input);
    let a = b.add_cell("A", CellKind::Input);
    b.add_cell("D", CellKind::Input);
    b.add_cell("E", CellKind::Input);
    let y = b.add_cell("Y", CellKind::comb(1));
    let bb = b.add_cell("B", CellKind::comb(1));
    let c = b.add_cell("C", CellKind::comb(1));
    b.connect("N1", x, [(y, 1)])?;
    b.connect("N2", a, [(bb, 1)])?;
    b.connect("N3", bb, [(c, 1)])?;
    let netlist = b.build()?;

    let place = |at: &[(&str, usize)]| -> Placement {
        let mut p = Placement::random(&arch, &netlist, 1).expect("fits");
        for &(name, col) in at {
            let cell = netlist.cell_by_name(name).expect("cell");
            let target = arch.geometry().site_at(RowId::new(0), ColId::new(col)).id();
            let from = p.site_of(cell);
            p.swap_sites(&arch, from, target);
        }
        for (cell, cc) in netlist.cells() {
            let all_bottom = p
                .palette(cc.kind())
                .iter()
                .position(|pm| pm.sides().iter().all(|s| *s == PortSide::Bottom))
                .expect("all-bottom pinmap") as u16;
            p.set_pinmap(&netlist, cell, all_bottom);
        }
        p
    };

    let report = |label: &str, p: &Placement| {
        let wl: f64 = netlist
            .nets()
            .map(|(id, _)| hpwl(&arch, &netlist, p, id))
            .sum();
        let mut st = RoutingState::new(&arch, &netlist);
        let out = route_batch(&mut st, &arch, &netlist, p, &RouterConfig::default(), 10);
        println!(
            "{label}: estimated wirelength {wl:.0}, routed {} ({} nets incomplete)",
            if out.fully_routed { "100%" } else { "FAILED" },
            out.incomplete
        );
    };

    println!("three nets, one channel, 3 segments on 2 tracks\n");
    report(
        "compact placement (paper Fig. 2 left) ",
        &place(&[("A", 0), ("X", 1), ("B", 3), ("Y", 4), ("C", 5)]),
    );
    report(
        "spread placement  (paper Fig. 2 right)",
        &place(&[("A", 0), ("B", 3), ("C", 8), ("Y", 7), ("X", 10)]),
    );

    println!("\nnow let the simultaneous engine find its own placement...");
    let result = SimultaneousPlaceRoute::new(SimPrConfig::fast()).run(&arch, &netlist)?;
    println!(
        "simultaneous engine: routed {} after {} moves",
        if result.fully_routed {
            "100%"
        } else {
            "FAILED"
        },
        result.total_moves
    );
    Ok(())
}
