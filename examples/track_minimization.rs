//! Track minimization: how many tracks per channel does each flow need?
//!
//! Reduces the channel width until each flow first fails 100 % wirability
//! (the paper's Table 2 methodology) on one benchmark, and prints both
//! minima — the simultaneous flow should need noticeably fewer tracks.
//!
//! ```sh
//! cargo run --release --example track_minimization
//! ```

use rowfpga::baseline::{SeqPrConfig, SequentialPlaceRoute};
use rowfpga::core::{size_architecture, SimPrConfig, SimultaneousPlaceRoute, SizingConfig};
use rowfpga::netlist::{generate, paper_preset, PaperBenchmark};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = generate(&paper_preset(PaperBenchmark::Cse));
    let sizing = SizingConfig::default();
    let base_arch = size_architecture(&netlist, &sizing)?;
    println!(
        "design cse ({} cells) on a {}x{} chip; scanning down from {} tracks/channel\n",
        netlist.num_cells(),
        base_arch.geometry().num_rows(),
        base_arch.geometry().num_cols(),
        sizing.tracks_per_channel
    );

    let mut minima = Vec::new();
    for (name, simultaneous) in [("sequential", false), ("simultaneous", true)] {
        let mut min_ok = None;
        let mut tracks = sizing.tracks_per_channel;
        loop {
            let arch = base_arch.with_tracks(tracks)?;
            let routed = if simultaneous {
                SimultaneousPlaceRoute::new(SimPrConfig::fast().with_seed(1))
                    .run(&arch, &netlist)?
                    .fully_routed
            } else {
                SequentialPlaceRoute::new(SeqPrConfig::fast().with_seed(1))
                    .run(&arch, &netlist)?
                    .fully_routed
            };
            print!("{}", if routed { "." } else { "x" });
            use std::io::Write as _;
            std::io::stdout().flush().ok();
            if !routed || tracks == 1 {
                break;
            }
            min_ok = Some(tracks);
            tracks -= 1;
        }
        let min_ok = min_ok.expect("routable at the starting width");
        println!("  {name}: minimum {min_ok} tracks/channel");
        minima.push(min_ok as f64);
    }
    println!(
        "\ntrack reduction: {:.1}%   (paper Table 2 reports 20-33%)",
        100.0 * (minima[0] - minima[1]) / minima[0]
    );
    Ok(())
}
