//! Architecture exploration: the segmentation tension of the paper's §1.
//!
//! Small segments maximize segment usage (good for wirability) but put
//! more antifuses on each signal path (bad for timing); long segments do
//! the opposite, so real parts mix lengths. This example lays out the same
//! design on fabrics that differ only in channel segmentation and reports
//! the worst-case delay and the routability at a tight channel width.
//!
//! ```sh
//! cargo run --release --example architecture_exploration
//! ```

use rowfpga::arch::SegmentationScheme;
use rowfpga::core::{size_architecture, SimPrConfig, SimultaneousPlaceRoute, SizingConfig};
use rowfpga::netlist::{generate, GenerateConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = generate(&GenerateConfig {
        num_cells: 100,
        num_inputs: 8,
        num_outputs: 8,
        num_seq: 6,
        seed: 11,
        ..GenerateConfig::default()
    });

    let schemes: Vec<(&str, SegmentationScheme)> = vec![
        ("uniform-2 (fine)", SegmentationScheme::Uniform { len: 2 }),
        ("uniform-4", SegmentationScheme::Uniform { len: 4 }),
        (
            "mixed 2/4/8",
            SegmentationScheme::Mixed {
                lengths: vec![2, 4, 8],
            },
        ),
        ("actel-like", SegmentationScheme::ActelLike { seed: 3 }),
        ("full-length", SegmentationScheme::FullLength),
    ];

    println!(
        "design: {} cells, {} nets; simultaneous flow at two channel widths\n",
        netlist.num_cells(),
        netlist.num_nets()
    );
    println!(
        "{:<18} {:>14} {:>14} {:>16}",
        "segmentation", "T @ 30 trk", "T @ 12 trk", "routed @ 12 trk"
    );

    for (name, scheme) in schemes {
        let mut row = format!("{name:<18}");
        for tracks in [30usize, 12] {
            let sizing = SizingConfig {
                segmentation: scheme.clone(),
                tracks_per_channel: tracks,
                ..SizingConfig::default()
            };
            let arch = size_architecture(&netlist, &sizing)?;
            let result = SimultaneousPlaceRoute::new(SimPrConfig::fast()).run(&arch, &netlist)?;
            row.push_str(&format!(" {:>11.1} ns", result.worst_delay / 1000.0));
            if tracks == 12 {
                row.push_str(&format!(
                    " {:>15}",
                    if result.fully_routed { "yes" } else { "NO" }
                ));
            }
        }
        println!("{row}");
    }
    println!(
        "\nExpected shape: fine segmentation routes at the tight width (every\n\
         segment is usable wire) but degrades fastest as congestion forces\n\
         detours; full-length tracks avoid horizontal antifuses yet hang the\n\
         whole track's capacitance on every net AND waste wire (unroutable\n\
         when tight); the mixed/Actel schemes balance the two — the tension\n\
         (paper §1) that motivates optimizing placement and routing together."
    );
    Ok(())
}
