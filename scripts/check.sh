#!/usr/bin/env bash
# Repo gate: formatting, lints, the full test suite, the fault-injection
# suite, and a deadline/checkpoint/resume smoke run of the real binary.
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test"
cargo test --workspace --offline -q

echo "== cargo test (fault injection)"
cargo test -p rowfpga-core --features fault-inject --offline -q

echo "== resilience smoke (2 s deadline -> checkpoint -> resume)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cargo run --offline -q -p rowfpga-cli -- generate \
  --cells 120 --inputs 8 --outputs 8 --seq 6 --seed 7 \
  -o "$smoke_dir/smoke.net"
# A full-effort run on this design takes well over two seconds, so the
# deadline must trip, degrade gracefully and leave a final checkpoint.
cargo run --offline -q -p rowfpga-cli -- layout "$smoke_dir/smoke.net" \
  --deadline 2 --checkpoint "$smoke_dir/smoke.ckpt" \
  | tee "$smoke_dir/smoke.out"
grep -q "stop: deadline" "$smoke_dir/smoke.out" \
  || { echo "FAIL: 2 s deadline did not stop the run"; exit 1; }
grep -q '"format": *"rowfpga-checkpoint"' "$smoke_dir/smoke.ckpt" \
  || { echo "FAIL: no valid checkpoint after deadline stop"; exit 1; }
# The checkpoint must load and resume (a zero deadline proves loading
# without paying for the rest of the anneal).
cargo run --offline -q -p rowfpga-cli -- layout "$smoke_dir/smoke.net" \
  --resume "$smoke_dir/smoke.ckpt" --deadline 0 \
  | tee "$smoke_dir/resume.out"
grep -q "stop: deadline" "$smoke_dir/resume.out" \
  || { echo "FAIL: checkpoint did not resume"; exit 1; }

echo "== bench smoke (move throughput vs committed artifact, >20% gate)"
# Release build: the committed numbers were measured in release, and the
# gate compares against them. Quick regenerations land in the smoke dir —
# the committed artifacts under results/ are the full-run baselines and
# only change when a PR deliberately re-records them.
cargo build --release --offline -q -p rowfpga-bench
./target/release/move_throughput --quick \
  --out "$smoke_dir/BENCH_move_throughput.json" \
  --check results/BENCH_move_throughput.json
./target/release/e2e --quick --out "$smoke_dir/BENCH_e2e.json"

echo "== parallel determinism smoke (2 replicas, identical layouts)"
cargo run --offline -q -p rowfpga-cli -- layout "$smoke_dir/smoke.net" \
  --fast --seed 5 --threads 2 | sed 's/ in [0-9.]*m\?s / /' \
  > "$smoke_dir/par1.out"
cargo run --offline -q -p rowfpga-cli -- layout "$smoke_dir/smoke.net" \
  --fast --seed 5 --threads 2 | sed 's/ in [0-9.]*m\?s / /' \
  > "$smoke_dir/par2.out"
diff "$smoke_dir/par1.out" "$smoke_dir/par2.out" \
  || { echo "FAIL: two-replica layout not reproducible"; exit 1; }
grep -q "routed: true" "$smoke_dir/par1.out" \
  || { echo "FAIL: two-replica layout left nets unrouted"; exit 1; }

echo "All checks passed."
