#!/usr/bin/env bash
# Repo gate: formatting, lints, the full test suite, the fault-injection
# suite, and a deadline/checkpoint/resume smoke run of the real binary.
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test"
cargo test --workspace --offline -q

echo "== cargo test (fault injection)"
cargo test -p rowfpga-core --features fault-inject --offline -q

echo "== resilience smoke (2 s deadline -> checkpoint -> resume)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cargo run --offline -q -p rowfpga-cli -- generate \
  --cells 120 --inputs 8 --outputs 8 --seq 6 --seed 7 \
  -o "$smoke_dir/smoke.net"
# A full-effort run on this design takes well over two seconds, so the
# deadline must trip, degrade gracefully and leave a final checkpoint.
cargo run --offline -q -p rowfpga-cli -- layout "$smoke_dir/smoke.net" \
  --deadline 2 --checkpoint "$smoke_dir/smoke.ckpt" \
  | tee "$smoke_dir/smoke.out"
grep -q "stop: deadline" "$smoke_dir/smoke.out" \
  || { echo "FAIL: 2 s deadline did not stop the run"; exit 1; }
grep -q '"format": *"rowfpga-checkpoint"' "$smoke_dir/smoke.ckpt" \
  || { echo "FAIL: no valid checkpoint after deadline stop"; exit 1; }
# The checkpoint must load and resume (a zero deadline proves loading
# without paying for the rest of the anneal).
cargo run --offline -q -p rowfpga-cli -- layout "$smoke_dir/smoke.net" \
  --resume "$smoke_dir/smoke.ckpt" --deadline 0 \
  | tee "$smoke_dir/resume.out"
grep -q "stop: deadline" "$smoke_dir/resume.out" \
  || { echo "FAIL: checkpoint did not resume"; exit 1; }

echo "All checks passed."
