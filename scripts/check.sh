#!/usr/bin/env bash
# Repo gate: formatting, lints, and the full test suite.
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test"
cargo test --workspace --offline -q

echo "All checks passed."
