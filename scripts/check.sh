#!/usr/bin/env bash
# Repo gate: formatting, lints, the full test suite (including the
# fault-injection and fuzzing harnesses), resilience/determinism smoke runs
# of the real binary, benchmark regression gates, and a short fuzz
# campaign.
#
# Usage: ./scripts/check.sh [--quick|--full] [STEP...]
#
#   --quick      lint + tests only (the pre-commit gate)
#   --full       everything (the default; what CI runs across its jobs)
#   STEP...      run only the named steps: lint test smoke bench fuzz
#
# The script is TTY-free (no colors, no interactivity) and honors
# CARGO_TARGET_DIR for the release binaries it invokes.
set -euo pipefail
cd "$(dirname "$0")/.."

target_dir="${CARGO_TARGET_DIR:-target}"
export CARGO_TERM_COLOR="${CARGO_TERM_COLOR:-never}"

mode=full
steps=()
for arg in "$@"; do
  case "$arg" in
    --quick) mode=quick ;;
    --full) mode=full ;;
    lint|test|smoke|bench|fuzz) steps+=("$arg") ;;
    *)
      echo "unknown argument: $arg" >&2
      echo "usage: $0 [--quick|--full] [lint|test|smoke|bench|fuzz ...]" >&2
      exit 2
      ;;
  esac
done
if [ "${#steps[@]}" -eq 0 ]; then
  if [ "$mode" = quick ]; then
    steps=(lint test)
  else
    steps=(lint test smoke bench fuzz)
  fi
fi

want() {
  local s
  for s in "${steps[@]}"; do [ "$s" = "$1" ] && return 0; done
  return 1
}

run_cli() {
  cargo run --offline -q -p rowfpga-cli -- "$@"
}

if want lint; then
  echo "== cargo fmt --check"
  cargo fmt --all -- --check

  echo "== cargo clippy (deny warnings)"
  cargo clippy --workspace --all-targets --offline -- -D warnings

  echo "== rowfpga lint (domain lints: hot-path, determinism, panic budget)"
  run_cli lint
fi

if want test; then
  echo "== cargo test"
  cargo test --workspace --offline -q

  echo "== cargo test (fault injection: engine self-repair suite)"
  cargo test -p rowfpga-core --features fault-inject --offline -q

  echo "== cargo test (fault injection: fuzz-harness detection suite)"
  cargo test -p rowfpga-verify --features fault-inject --offline -q

  echo "== observability smoke (journal -> tail -> analyze)"
  obs_dir="$(mktemp -d)"
  run_cli bench s1 --fast --journal "$obs_dir/run.jsonl" > /dev/null
  run_cli tail "$obs_dir/run.jsonl" --no-follow > "$obs_dir/tail.out"
  grep -q "done (converged)" "$obs_dir/tail.out" \
    || { echo "FAIL: tail did not render run completion"; exit 1; }
  run_cli analyze "$obs_dir/run.jsonl" --out "$obs_dir" --quiet \
    > "$obs_dir/analyze.out"
  grep -q "analysis written to" "$obs_dir/analyze.out" \
    || { echo "FAIL: analyze produced no report"; exit 1; }
  test -s "$obs_dir/run.folded" \
    || { echo "FAIL: analyze wrote no folded-stack profile"; exit 1; }
  rm -rf "$obs_dir"
fi

smoke_dir=""
if want smoke || want fuzz || want bench; then
  smoke_dir="$(mktemp -d)"
  trap 'rm -rf "$smoke_dir"' EXIT
fi

if want smoke; then
  echo "== resilience smoke (2 s deadline -> checkpoint -> resume)"
  run_cli generate \
    --cells 120 --inputs 8 --outputs 8 --seq 6 --seed 7 \
    -o "$smoke_dir/smoke.net"
  # A full-effort run on this design takes well over two seconds, so the
  # deadline must trip, degrade gracefully and leave a final checkpoint.
  run_cli layout "$smoke_dir/smoke.net" \
    --deadline 2 --checkpoint "$smoke_dir/smoke.ckpt" \
    > "$smoke_dir/smoke.out"
  cat "$smoke_dir/smoke.out"
  grep -q "stop: deadline" "$smoke_dir/smoke.out" \
    || { echo "FAIL: 2 s deadline did not stop the run"; exit 1; }
  grep -q '"format": *"rowfpga-checkpoint"' "$smoke_dir/smoke.ckpt" \
    || { echo "FAIL: no valid checkpoint after deadline stop"; exit 1; }
  # The checkpoint must load and resume (a zero deadline proves loading
  # without paying for the rest of the anneal).
  run_cli layout "$smoke_dir/smoke.net" \
    --resume "$smoke_dir/smoke.ckpt" --deadline 0 \
    > "$smoke_dir/resume.out"
  cat "$smoke_dir/resume.out"
  grep -q "stop: deadline" "$smoke_dir/resume.out" \
    || { echo "FAIL: checkpoint did not resume"; exit 1; }

  echo "== parallel determinism smoke (2 replicas, identical layouts)"
  run_cli layout "$smoke_dir/smoke.net" \
    --fast --seed 5 --threads 2 | sed 's/ in [0-9.]*m\?s / /' \
    > "$smoke_dir/par1.out"
  run_cli layout "$smoke_dir/smoke.net" \
    --fast --seed 5 --threads 2 | sed 's/ in [0-9.]*m\?s / /' \
    > "$smoke_dir/par2.out"
  diff "$smoke_dir/par1.out" "$smoke_dir/par2.out" \
    || { echo "FAIL: two-replica layout not reproducible"; exit 1; }
  grep -q "routed: true" "$smoke_dir/par1.out" \
    || { echo "FAIL: two-replica layout left nets unrouted"; exit 1; }

  echo "== serve smoke (daemon, deadline job, SIGTERM drain, resumable spool)"
  cargo build --offline -q -p rowfpga-cli
  serve_sock="$smoke_dir/serve.sock"
  serve_spool="$smoke_dir/spool"
  "$target_dir/debug/rowfpga" serve \
    --socket "$serve_sock" --spool "$serve_spool" \
    > "$smoke_dir/serve.out" &
  serve_pid=$!
  for _ in $(seq 1 100); do [ -S "$serve_sock" ] && break; sleep 0.1; done
  [ -S "$serve_sock" ] || { echo "FAIL: daemon socket never appeared"; exit 1; }
  # Graceful degradation over the wire: the 2 s budget expires mid-anneal
  # and the job *completes* with its best-so-far layout.
  "$target_dir/debug/rowfpga" submit "$smoke_dir/smoke.net" \
    --socket "$serve_sock" --deadline 2 --wait --timeout 300 \
    > "$smoke_dir/submit.out"
  cat "$smoke_dir/submit.out"
  grep -q "stop: deadline" "$smoke_dir/submit.out" \
    || { echo "FAIL: service job did not degrade at its deadline"; exit 1; }
  "$target_dir/debug/rowfpga" jobs --socket "$serve_sock" \
    > "$smoke_dir/jobs.out"
  grep -q "done" "$smoke_dir/jobs.out" \
    || { echo "FAIL: jobs did not list the finished job"; exit 1; }
  # Leave a second job in flight so the drain has work to checkpoint.
  "$target_dir/debug/rowfpga" submit "$smoke_dir/smoke.net" \
    --socket "$serve_sock" --seed 9 > /dev/null
  sleep 1
  kill -TERM "$serve_pid"
  wait "$serve_pid" \
    || { cat "$smoke_dir/serve.out"
         echo "FAIL: SIGTERM drain exited non-zero"; exit 1; }
  grep -q "drained:" "$smoke_dir/serve.out" \
    || { echo "FAIL: daemon wrote no drain summary"; exit 1; }
  # The drained spool is resumable: the interrupted job is durably queued
  # (a daemon restart on this spool would pick it straight back up).
  grep -q '"state":"queued"' "$serve_spool/jobs/job-000002/job.json" \
    || { echo "FAIL: drained spool did not persist the in-flight job as queued"; exit 1; }
fi

if want bench; then
  echo "== bench smoke (throughput vs committed artifacts, >20% gates)"
  # Release build: the committed numbers were measured in release, and the
  # gates compare against them. Quick regenerations land in the temp dir —
  # the committed artifacts under results/ are the recorded baselines and
  # only change when a PR deliberately re-records them.
  cargo build --release --offline -q -p rowfpga-bench
  "$target_dir/release/move_throughput" --quick \
    --out "$smoke_dir/BENCH_move_throughput.json" \
    --check results/BENCH_move_throughput.json
  "$target_dir/release/e2e" --quick \
    --out "$smoke_dir/BENCH_e2e.json" \
    --check results/BENCH_e2e_quick.json
  # The service load generator asserts internally that every job reaches
  # `done` under queueing and preemption; there is no throughput gate
  # because turnaround is dominated by the job mix, not the engine.
  "$target_dir/release/serve" --quick \
    --out "$smoke_dir/BENCH_service.json"
fi

if want fuzz; then
  echo "== fuzz smoke (3 seeds x 20 s differential fuzzing)"
  cargo build --release --offline -q -p rowfpga-cli
  for seed in 1 2 3; do
    "$target_dir/release/rowfpga" fuzz --seconds 20 --seed "$seed" \
      --max-cells 120 --corpus "$smoke_dir/corpus" \
      > "$smoke_dir/fuzz$seed.out" \
      || { cat "$smoke_dir/fuzz$seed.out"
           echo "FAIL: fuzz seed $seed found violations"; exit 1; }
    tail -n 1 "$smoke_dir/fuzz$seed.out"
  done
  if [ -d "$smoke_dir/corpus" ] && [ -n "$(ls -A "$smoke_dir/corpus")" ]; then
    echo "FAIL: fuzz smoke left repros in the corpus"; exit 1
  fi
fi

echo "All checks passed."
