//! Integration tests of routing corner cases: chip-edge channels, trivial
//! spans, fragmented tracks and resource exhaustion.

use rowfpga::arch::{Architecture, ColId, RowId, SegmentationScheme, VerticalScheme};
use rowfpga::netlist::{CellKind, Netlist, PortSide};
use rowfpga::place::Placement;
use rowfpga::route::{
    net_requirements, route_batch, verify_routing, NetRouteState, RouterConfig, RoutingState,
};
use rowfpga_verify::check_all;

/// Places named cells at row-0 columns and forces all pins bottom.
fn place_bottom(arch: &Architecture, netlist: &Netlist, at: &[(&str, usize)]) -> Placement {
    let mut p = Placement::random(arch, netlist, 1).expect("fits");
    for &(name, col) in at {
        let cell = netlist.cell_by_name(name).expect("cell");
        let target = arch.geometry().site_at(RowId::new(0), ColId::new(col)).id();
        let from = p.site_of(cell);
        p.swap_sites(arch, from, target);
    }
    for (cell, c) in netlist.cells() {
        let idx = p
            .palette(c.kind())
            .iter()
            .position(|pm| pm.sides().iter().all(|s| *s == PortSide::Bottom))
            .expect("all-bottom pinmap") as u16;
        p.set_pinmap(netlist, cell, idx);
    }
    p
}

fn two_cell_netlist() -> Netlist {
    let mut b = Netlist::builder();
    let a = b.add_cell("a", CellKind::Input);
    let q = b.add_cell("q", CellKind::Output);
    b.connect("n", a, [(q, 0)]).unwrap();
    b.build().unwrap()
}

#[test]
fn zero_span_net_routes_on_one_segment() {
    // Driver and sink in adjacent columns... actually the same column is
    // impossible (one cell per site), so use adjacent columns: span 1.
    let nl = two_cell_netlist();
    let arch = Architecture::builder()
        .rows(1)
        .cols(8)
        .io_columns(3) // both cells are I/O; give them adjacent columns
        .segmentation(SegmentationScheme::Uniform { len: 2 })
        .tracks_per_channel(2)
        .build()
        .unwrap();
    let p = place_bottom(&arch, &nl, &[("a", 1), ("q", 2)]);
    let mut st = RoutingState::new(&arch, &nl);
    let out = route_batch(&mut st, &arch, &nl, &p, &RouterConfig::default(), 2);
    assert!(out.fully_routed);
    let net = nl.net_by_name("n").unwrap();
    let route = st.route(net);
    assert!(
        route.vsegs().is_empty(),
        "single-channel net used verticals"
    );
    let (_, segs) = &route.hsegs()[0];
    assert_eq!(
        segs.len(),
        1,
        "span 1..2 needs at most one run segment... see below"
    );
    verify_routing(&st, &arch, &nl, &p).unwrap();
    check_all(&arch, &nl, &p, &st).unwrap();
}

#[test]
fn nets_route_in_the_bottom_and_top_edge_channels() {
    // Channel 0 (below row 0) and channel R (above the top row) are edge
    // channels with rows on only one side; routing must work there too.
    let mut b = Netlist::builder();
    let a = b.add_cell("a", CellKind::Input);
    let g = b.add_cell("g", CellKind::comb(1));
    let q = b.add_cell("q", CellKind::Output);
    b.connect("n1", a, [(g, 1)]).unwrap();
    b.connect("n2", g, [(q, 0)]).unwrap();
    let nl = b.build().unwrap();
    let arch = Architecture::builder()
        .rows(2)
        .cols(8)
        .io_columns(2)
        .tracks_per_channel(4)
        .build()
        .unwrap();
    // Top side of the top row = channel 2; force everything up there.
    let mut p = Placement::random(&arch, &nl, 3).unwrap();
    for (cell, c) in nl.cells() {
        // move all cells to row 1 (top row), compatible sites
        let want_io = c.kind().is_io();
        let target = arch
            .geometry()
            .sites()
            .find(|s| {
                s.row().index() == 1
                    && (s.kind() == rowfpga::arch::SiteKind::Io) == want_io
                    && p.cell_at(s.id()).is_none_or(|occ| occ == cell)
            })
            .expect("row 1 site available")
            .id();
        let from = p.site_of(cell);
        p.swap_sites(&arch, from, target);
        let idx = p
            .palette(c.kind())
            .iter()
            .position(|pm| pm.sides().iter().all(|s| *s == PortSide::Top))
            .expect("all-top pinmap") as u16;
        p.set_pinmap(&nl, cell, idx);
    }
    let mut st = RoutingState::new(&arch, &nl);
    let out = route_batch(&mut st, &arch, &nl, &p, &RouterConfig::default(), 4);
    assert!(out.fully_routed, "top edge channel failed to route");
    for (id, _) in nl.nets() {
        let req = net_requirements(&arch, &nl, &p, id);
        assert_eq!(req.chan_min, 3 - 1, "pins should sit in the top channel");
    }
    verify_routing(&st, &arch, &nl, &p).unwrap();
    check_all(&arch, &nl, &p, &st).unwrap();
}

#[test]
fn fragmentation_blocks_then_rip_up_recovers() {
    // One track of segments [0,4),[4,8): a net with span crossing column 4
    // needs both segments; first claim the left one with a short net, then
    // show the long net fails, then rip up and show it routes.
    let mut b = Netlist::builder();
    let a1 = b.add_cell("a1", CellKind::Input);
    let q1 = b.add_cell("q1", CellKind::Output);
    let a2 = b.add_cell("a2", CellKind::Input);
    let q2 = b.add_cell("q2", CellKind::Output);
    b.connect("short", a1, [(q1, 0)]).unwrap();
    b.connect("long", a2, [(q2, 0)]).unwrap();
    let nl = b.build().unwrap();
    let arch = Architecture::builder()
        .rows(1)
        .cols(8)
        .io_columns(3)
        .segmentation(SegmentationScheme::Explicit {
            tracks: vec![vec![4]],
        })
        .build()
        .unwrap();
    let p = place_bottom(&arch, &nl, &[("a1", 1), ("q1", 2), ("a2", 0), ("q2", 6)]);
    let short = nl.net_by_name("short").unwrap();
    let long = nl.net_by_name("long").unwrap();

    let mut st = RoutingState::new(&arch, &nl);
    let cfg = RouterConfig::default();
    // The detailed pass routes the longer span first (span 3..6 needs both
    // segments), so the short net is the one squeezed out.
    st.route_incremental(&arch, &nl, &p, &cfg);
    assert_eq!(st.net_state(long), NetRouteState::Detailed);
    assert_eq!(st.net_state(short), NetRouteState::Global);

    // Free the long net and give the still-queued short net first pick
    // (a detailed-only pass: the ripped long net sits in U_G, not U_D).
    st.rip_up(long);
    rowfpga::route::detail_route_pass(&mut st, &arch, &cfg);
    assert_eq!(st.net_state(short), NetRouteState::Detailed);
    assert_eq!(st.net_state(long), NetRouteState::Unrouted);
    // A full incremental pass now brings the long net back as the failure.
    st.route_incremental(&arch, &nl, &p, &cfg);
    assert_eq!(st.net_state(long), NetRouteState::Global);
    verify_routing(&st, &arch, &nl, &p).unwrap();
    check_all(&arch, &nl, &p, &st).unwrap();
}

#[test]
fn vertical_exhaustion_is_reported_as_global_failure() {
    // Two nets must cross the row, but each column offers one vertical
    // track; both nets' bounding boxes cover the same two columns only if
    // placed tightly — so starve verticals chip-wide instead: zero capacity
    // is impossible (builder floor of 1), so use 1 track of span 2 on a
    // 3-row chip, making full crossings impossible for spans > 3 channels.
    let mut b = Netlist::builder();
    let a = b.add_cell("a", CellKind::Input);
    let g = b.add_cell("g", CellKind::comb(1));
    let q = b.add_cell("q", CellKind::Output);
    b.connect("n1", a, [(g, 1)]).unwrap();
    b.connect("n2", g, [(q, 0)]).unwrap();
    let nl = b.build().unwrap();
    let arch = Architecture::builder()
        .rows(3)
        .cols(8)
        .io_columns(2)
        .verticals(VerticalScheme::Uniform {
            tracks_per_column: 1,
            span: 2,
        })
        .build()
        .unwrap();
    // Chains of span-2 segments overlap by one channel, so crossing all 4
    // channels takes 3 chained segments — legal. Exhaust them: the router
    // caps chains at max_vchain; set it to 1 so multi-hop chains are
    // impossible and any net spanning > 2 channels fails globally.
    let cfg = RouterConfig {
        max_vchain: 1,
        ..RouterConfig::default()
    };
    let mut p = Placement::random(&arch, &nl, 1).unwrap();
    // Put a at row 0 and g at row 2 so n1 must cross at least two rows.
    let a_site = arch
        .geometry()
        .sites()
        .find(|s| s.row().index() == 0 && s.kind() == rowfpga::arch::SiteKind::Io)
        .unwrap()
        .id();
    let g_site = arch
        .geometry()
        .sites()
        .find(|s| s.row().index() == 2 && s.kind() == rowfpga::arch::SiteKind::Logic)
        .unwrap()
        .id();
    let fa = p.site_of(a);
    if fa != a_site {
        p.swap_sites(&arch, fa, a_site);
    }
    if p.site_of(g) != g_site {
        p.swap_sites(&arch, p.site_of(g), g_site);
    }
    // force bottom pinmaps so n1 spans channels 0..2 (3 channels)
    for cell in [a, g] {
        let kind = nl.cell(cell).kind();
        let idx = p
            .palette(kind)
            .iter()
            .position(|pm| pm.sides().iter().all(|s| *s == PortSide::Bottom))
            .unwrap() as u16;
        p.set_pinmap(&nl, cell, idx);
    }
    let mut st = RoutingState::new(&arch, &nl);
    route_batch(&mut st, &arch, &nl, &p, &cfg, 2);
    assert!(
        st.globally_unrouted() > 0,
        "span-3 net with chain cap 1 must fail globally"
    );
    assert_eq!(
        st.net_state(nl.net_by_name("n1").unwrap()),
        NetRouteState::Unrouted
    );
    verify_routing(&st, &arch, &nl, &p).unwrap();
    check_all(&arch, &nl, &p, &st).unwrap();
}
