//! Cross-crate integration: both flows end-to-end on a small design,
//! audited by the independent routing verifier and the standalone timing
//! analyzer. (The paper-scale benchmarks run in the release-mode
//! experiment binaries; these tests use a reduced design so the debug-mode
//! suite stays quick.)

use rowfpga::baseline::{SeqPrConfig, SequentialPlaceRoute};
use rowfpga::core::{size_architecture, SimPrConfig, SimultaneousPlaceRoute, SizingConfig};
use rowfpga::netlist::{generate, GenerateConfig};
use rowfpga::route::verify_routing;
use rowfpga::timing::Sta;

fn small_design() -> GenerateConfig {
    GenerateConfig {
        num_cells: 80,
        num_inputs: 6,
        num_outputs: 6,
        num_seq: 5,
        seed: 3,
        ..GenerateConfig::default()
    }
}

#[test]
fn simultaneous_flow_end_to_end_on_a_small_design() {
    let netlist = generate(&small_design());
    let arch = size_architecture(&netlist, &SizingConfig::default()).unwrap();
    let result = SimultaneousPlaceRoute::new(SimPrConfig::fast())
        .run(&arch, &netlist)
        .unwrap();
    assert!(result.fully_routed);
    verify_routing(&result.routing, &arch, &netlist, &result.placement).unwrap();
    // reported delay equals an independent re-analysis
    let sta = Sta::analyze(&arch, &netlist, &result.placement, &result.routing).unwrap();
    assert!((sta.worst_delay() - result.worst_delay).abs() < 1e-6);
    // dynamics recorded something sensible
    assert!(!result.dynamics.is_empty());
    let last = result.dynamics.samples().last().unwrap();
    assert!(last.nets_unrouted <= 0.05, "dynamics should converge");
}

#[test]
fn sequential_flow_end_to_end_on_a_small_design() {
    let netlist = generate(&small_design());
    let arch = size_architecture(&netlist, &SizingConfig::default()).unwrap();
    let result = SequentialPlaceRoute::new(SeqPrConfig::fast())
        .run(&arch, &netlist)
        .unwrap();
    assert!(result.fully_routed);
    verify_routing(&result.routing, &arch, &netlist, &result.placement).unwrap();
}

#[test]
fn simultaneous_beats_sequential_on_timing() {
    // The headline claim (Table 1), at smoke effort on one benchmark.
    let netlist = generate(&small_design());
    let arch = size_architecture(&netlist, &SizingConfig::default()).unwrap();
    let seq = SequentialPlaceRoute::new(SeqPrConfig::fast().with_seed(1))
        .run(&arch, &netlist)
        .unwrap();
    let sim = SimultaneousPlaceRoute::new(SimPrConfig::fast().with_seed(1))
        .run(&arch, &netlist)
        .unwrap();
    assert!(seq.fully_routed && sim.fully_routed);
    assert!(
        sim.worst_delay < seq.worst_delay,
        "simultaneous {:.1} ns did not beat sequential {:.1} ns",
        sim.worst_delay / 1000.0,
        seq.worst_delay / 1000.0
    );
}

#[test]
fn both_flows_share_the_layout_result_interface() {
    let netlist = generate(&small_design());
    let arch = size_architecture(&netlist, &SizingConfig::default()).unwrap();
    let results = [
        SequentialPlaceRoute::new(SeqPrConfig::fast())
            .run(&arch, &netlist)
            .unwrap(),
        SimultaneousPlaceRoute::new(SimPrConfig::fast())
            .run(&arch, &netlist)
            .unwrap(),
    ];
    for r in &results {
        assert!(r.worst_delay > 0.0);
        assert!(!r.critical_path.elements.is_empty());
        assert_eq!(r.fully_routed, r.incomplete == 0);
        assert!(r.placement.check_invariants(&arch, &netlist));
    }
}
