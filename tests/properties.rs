//! Property-based tests over the core data structures and the central
//! transactional invariant: *apply + undo is the identity on the full
//! layout state*.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use rowfpga::anneal::AnnealProblem;
use rowfpga::arch::{Architecture, ChannelId, SegmentationScheme, VerticalScheme};
use rowfpga::core::{CostConfig, LayoutProblem};
use rowfpga::netlist::{generate, parse_netlist, write_netlist, GenerateConfig, Levels};
use rowfpga::place::{MoveGenerator, MoveWeights, Placement};
use rowfpga::route::{verify_routing, RouterConfig, RoutingState};
use rowfpga::timing::TimingState;

fn arb_generate_config() -> impl Strategy<Value = GenerateConfig> {
    (
        30usize..90,
        3usize..8,
        3usize..8,
        0usize..6,
        2usize..5,
        any::<u64>(),
    )
        .prop_map(|(cells, pi, po, ff, fanin, seed)| GenerateConfig {
            num_cells: cells.max(pi + po + ff + 2),
            num_inputs: pi,
            num_outputs: po,
            num_seq: ff,
            max_fanin: fanin,
            seed,
            ..GenerateConfig::default()
        })
}

fn arb_segmentation() -> impl Strategy<Value = SegmentationScheme> {
    prop_oneof![
        Just(SegmentationScheme::FullLength),
        (2usize..6).prop_map(|len| SegmentationScheme::Uniform { len }),
        proptest::collection::vec(2usize..7, 1..4)
            .prop_map(|lengths| SegmentationScheme::Mixed { lengths }),
        any::<u64>().prop_map(|seed| SegmentationScheme::ActelLike { seed }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Generated netlists always levelize and their parsed round trip is
    /// structurally identical.
    #[test]
    fn netlist_roundtrip_and_levelization(config in arb_generate_config()) {
        let nl = generate(&config);
        let levels = Levels::compute(&nl).expect("generated netlists levelize");
        prop_assert!(levels.max_level() >= 1);
        let text = write_netlist(&nl);
        let back = parse_netlist(&text).expect("writer output parses");
        prop_assert_eq!(nl.num_cells(), back.num_cells());
        prop_assert_eq!(nl.num_nets(), back.num_nets());
        for (id, net) in nl.nets() {
            let other = back.net_by_name(net.name()).expect("net survives");
            prop_assert_eq!(back.net(other).fanout(), net.fanout());
            let _ = id;
        }
    }

    /// Every segmentation scheme tiles every channel exactly.
    #[test]
    fn segmentation_tiles_channels(
        scheme in arb_segmentation(),
        rows in 1usize..6,
        cols in 6usize..40,
        tracks in 1usize..8,
    ) {
        let arch = Architecture::builder()
            .rows(rows)
            .cols(cols)
            .io_columns(1)
            .tracks_per_channel(tracks)
            .segmentation(scheme)
            .build()
            .expect("valid fabric");
        for chan in 0..arch.geometry().num_channels() {
            for track in arch.channel_tracks(ChannelId::new(chan)) {
                let segs = track.segments();
                prop_assert_eq!(segs[0].start(), 0);
                prop_assert_eq!(segs.last().unwrap().end(), cols);
                for w in segs.windows(2) {
                    prop_assert_eq!(w[0].end(), w[1].start());
                }
            }
        }
    }

    /// Vertical schemes always let a chain cross the whole chip.
    #[test]
    fn vertical_chains_reach_everywhere(
        rows in 1usize..8,
        span in 2usize..5,
        per_col in 1usize..4,
    ) {
        let arch = Architecture::builder()
            .rows(rows)
            .cols(8)
            .io_columns(1)
            .verticals(VerticalScheme::Uniform { tracks_per_column: per_col, span })
            .build()
            .expect("valid fabric");
        let channels = arch.geometry().num_channels();
        for col in 0..8 {
            let segs = arch.vsegs_at(rowfpga::arch::ColId::new(col));
            // greedy cover of [0, channels-1]
            let mut reach = None::<usize>;
            loop {
                let next = segs
                    .iter()
                    .filter(|s| match reach {
                        None => s.chan_lo().index() == 0,
                        Some(r) => s.chan_lo().index() <= r && s.chan_hi().index() > r,
                    })
                    .map(|s| s.chan_hi().index())
                    .max();
                match next {
                    Some(h) => {
                        reach = Some(h);
                        if h >= channels - 1 { break; }
                    }
                    None => break,
                }
            }
            prop_assert_eq!(reach, Some(channels - 1));
        }
    }

    /// Placement move apply+undo is the identity, for any seed.
    #[test]
    fn placement_moves_undo(seed in any::<u64>()) {
        let nl = generate(&GenerateConfig {
            num_cells: 30, num_inputs: 4, num_outputs: 4, num_seq: 2,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(4).cols(10).io_columns(1).build().unwrap();
        let mut p = Placement::random(&arch, &nl, seed).unwrap();
        let reference = p.clone();
        let gen = MoveGenerator::new(&arch, &nl, MoveWeights::default());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        for _ in 0..50 {
            let m = gen.propose(&nl, &p, &mut rng);
            m.apply(&arch, &nl, &mut p);
            m.undo(&arch, &nl, &mut p);
        }
        for (id, _) in nl.cells() {
            prop_assert_eq!(p.site_of(id), reference.site_of(id));
            prop_assert_eq!(p.pinmap_index(id), reference.pinmap_index(id));
        }
    }

    /// Routing transactions roll back exactly, leaving a verifiable state,
    /// for any move sequence.
    #[test]
    fn routing_transactions_roll_back(seed in any::<u64>()) {
        let nl = generate(&GenerateConfig {
            num_cells: 30, num_inputs: 4, num_outputs: 4, num_seq: 2,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(4).cols(12).io_columns(1).tracks_per_channel(12).build().unwrap();
        let mut p = Placement::random(&arch, &nl, seed).unwrap();
        let mut st = RoutingState::new(&arch, &nl);
        let cfg = RouterConfig::default();
        st.route_incremental(&arch, &nl, &p, &cfg);
        let gen = MoveGenerator::new(&arch, &nl, MoveWeights::default());
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
        for i in 0..20 {
            let m = gen.propose(&nl, &p, &mut rng);
            st.begin_txn();
            m.apply(&arch, &nl, &mut p);
            for cell in m.affected_cells(&p) {
                st.rip_up_cell(&nl, cell);
            }
            st.route_incremental(&arch, &nl, &p, &cfg);
            if i % 2 == 0 {
                st.commit();
            } else {
                st.rollback();
                m.undo(&arch, &nl, &mut p);
            }
            verify_routing(&st, &arch, &nl, &p).expect("verifiable after every step");
        }
    }

    /// The full layout-problem cascade (placement + routing + timing)
    /// survives arbitrary accept/reject sequences with a consistent state.
    #[test]
    fn layout_problem_accept_reject_consistency(seed in any::<u64>(), plan in any::<u32>()) {
        let nl = generate(&GenerateConfig {
            num_cells: 25, num_inputs: 3, num_outputs: 3, num_seq: 2,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(4).cols(10).io_columns(1).tracks_per_channel(10).build().unwrap();
        let mut problem = LayoutProblem::new(
            &arch, &nl,
            RouterConfig::default(),
            CostConfig::default(),
            MoveWeights::default(),
            seed,
        ).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
        for bit in 0..32 {
            let (applied, _) = problem.propose_and_apply(&mut rng);
            if plan & (1 << bit) != 0 {
                problem.commit(applied);
            } else {
                problem.undo(applied);
            }
        }
        verify_routing(problem.routing(), &arch, &nl, problem.placement()).unwrap();
        let oracle = TimingState::new(&arch, &nl, problem.placement(), problem.routing()).unwrap();
        prop_assert!((problem.timing().worst() - oracle.worst()).abs() < 1e-6);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Checkpointing at an arbitrary temperature step and resuming from
    /// the written file reproduces the uninterrupted run bit for bit:
    /// same moves, same temperatures, same placement, same delay.
    #[test]
    fn checkpoint_resume_is_bit_identical(seed in 0u64..1000, k in 1usize..12) {
        use rowfpga::core::{SimPrConfig, SimultaneousPlaceRoute, StopReason};

        let nl = generate(&GenerateConfig {
            num_cells: 35, num_inputs: 4, num_outputs: 4, num_seq: 3,
            ..GenerateConfig::default()
        });
        let arch = Architecture::builder()
            .rows(4).cols(12).io_columns(2).tracks_per_channel(14).build().unwrap();
        let ckpt = std::env::temp_dir()
            .join(format!("rowfpga_prop_ckpt_{seed}_{k}.json"));
        let _ = std::fs::remove_file(&ckpt);

        // Baseline: one uninterrupted run.
        let full = SimultaneousPlaceRoute::new(SimPrConfig::fast().with_seed(seed))
            .run(&arch, &nl).unwrap();

        // Same run, stopped after k temperatures with a checkpoint...
        let mut cfg = SimPrConfig::fast().with_seed(seed);
        cfg.resilience.checkpoint_path = Some(ckpt.clone());
        cfg.resilience.checkpoint_every = 1;
        cfg.resilience.temp_budget = Some(k);
        let partial = SimultaneousPlaceRoute::new(cfg).run(&arch, &nl).unwrap();
        prop_assert!(ckpt.exists());

        // ...then resumed to completion.
        let mut cfg = SimPrConfig::fast().with_seed(seed);
        cfg.resilience.resume_path = Some(ckpt.clone());
        let resumed = SimultaneousPlaceRoute::new(cfg).run(&arch, &nl).unwrap();
        let _ = std::fs::remove_file(&ckpt);

        prop_assert_eq!(resumed.stop_reason, StopReason::Converged);
        prop_assert_eq!(resumed.total_moves, full.total_moves);
        prop_assert_eq!(resumed.temperatures, full.temperatures);
        prop_assert_eq!(resumed.worst_delay, full.worst_delay);
        prop_assert_eq!(resumed.incomplete, full.incomplete);
        prop_assert_eq!(resumed.globally_unrouted, full.globally_unrouted);
        prop_assert_eq!(resumed.dynamics.samples().len(), full.dynamics.samples().len());
        for (id, _) in nl.cells() {
            prop_assert_eq!(
                resumed.placement.site_of(id), full.placement.site_of(id));
            prop_assert_eq!(
                resumed.placement.pinmap_index(id), full.placement.pinmap_index(id));
        }
        // The partial run's early stop was tagged as the deadline it is
        // (unless the whole anneal fit inside k temperatures).
        if partial.temperatures == k {
            prop_assert_eq!(partial.stop_reason, StopReason::Deadline);
        }
    }
}
