//! Reconstruction of the paper's Figure 2 anecdote: with segmented tracks,
//! a placement with *less* total net length can be unroutable while a
//! longer alternative wires completely — and the leverage to fix it lies in
//! placement, not routing.
//!
//! Fabric: one logic row, a single channel of interest (channel 0, all
//! pins forced to bottom ports), two tracks holding three segments in
//! total: track 0 is one full-length segment, track 1 is split `[0,6)` /
//! `[6,12)`.
//!
//! Nets: `N1: X→Y`, `N2: A→B`, `N3: B→C` (as in the figure). Because `N2`
//! and `N3` share cell `B`, their spans always overlap at `B`'s column, so
//! they can never share a track in the channel.

use rowfpga::arch::{Architecture, ColId, RowId, SegmentationScheme};
use rowfpga::core::{SimPrConfig, SimultaneousPlaceRoute};
use rowfpga::netlist::{CellId, CellKind, Netlist, PortSide};
use rowfpga::place::Placement;
use rowfpga::route::{route_batch, RouterConfig, RoutingState};

fn fabric() -> Architecture {
    Architecture::builder()
        .rows(1)
        .cols(12)
        .io_columns(2)
        .segmentation(SegmentationScheme::Explicit {
            tracks: vec![vec![], vec![6]],
        })
        .build()
        .expect("figure 2 fabric")
}

fn design() -> Netlist {
    let mut b = Netlist::builder();
    let x = b.add_cell("X", CellKind::Input);
    let a = b.add_cell("A", CellKind::Input);
    let d = b.add_cell("D", CellKind::Input); // spectators occupying sites
    let e = b.add_cell("E", CellKind::Input);
    let y = b.add_cell("Y", CellKind::comb(1));
    let bb = b.add_cell("B", CellKind::comb(1));
    let c = b.add_cell("C", CellKind::comb(1));
    b.connect("N1", x, [(y, 1)]).unwrap();
    b.connect("N2", a, [(bb, 1)]).unwrap();
    b.connect("N3", bb, [(c, 1)]).unwrap();
    let _ = (d, e);
    b.build().unwrap()
}

/// Places each named cell at the given column of row 0 and forces every
/// pin onto the bottom (channel 0) ports.
fn place(arch: &Architecture, netlist: &Netlist, at: &[(&str, usize)]) -> Placement {
    let mut p = Placement::random(arch, netlist, 1).expect("fits");
    let geom = arch.geometry();
    for &(name, col) in at {
        let cell = netlist.cell_by_name(name).expect("cell exists");
        let target = geom.site_at(RowId::new(0), ColId::new(col)).id();
        let from = p.site_of(cell);
        p.swap_sites(arch, from, target);
    }
    for (cell, c) in netlist.cells() {
        let all_bottom = p
            .palette(c.kind())
            .iter()
            .position(|pm| pm.sides().iter().all(|s| *s == PortSide::Bottom))
            .expect("all-bottom pinmap") as u16;
        p.set_pinmap(netlist, cell, all_bottom);
    }
    p
}

fn total_hpwl(arch: &Architecture, netlist: &Netlist, p: &Placement) -> f64 {
    netlist
        .nets()
        .map(|(id, _)| rowfpga::place::hpwl(arch, netlist, p, id))
        .sum()
}

/// The compact placement of Figure 2 (left): lower wirelength, unroutable.
fn left_placement(arch: &Architecture, netlist: &Netlist) -> Placement {
    place(
        arch,
        netlist,
        &[("A", 0), ("X", 1), ("B", 3), ("Y", 4), ("C", 5)],
    )
}

/// The spread placement of Figure 2 (right): higher wirelength, routable.
fn right_placement(arch: &Architecture, netlist: &Netlist) -> Placement {
    place(
        arch,
        netlist,
        &[("A", 0), ("B", 3), ("C", 8), ("Y", 7), ("X", 10)],
    )
}

#[test]
fn shorter_placement_is_unroutable() {
    let arch = fabric();
    let nl = design();
    let p = left_placement(&arch, &nl);
    let mut st = RoutingState::new(&arch, &nl);
    let out = route_batch(&mut st, &arch, &nl, &p, &RouterConfig::default(), 10);
    assert!(
        !out.fully_routed,
        "the compact placement must be unroutable on this segmentation"
    );
    assert_eq!(out.globally_unrouted, 0, "only detailed routing fails");
    assert_eq!(out.incomplete, 1, "exactly one net cannot be embedded");
}

#[test]
fn longer_placement_routes_completely() {
    let arch = fabric();
    let nl = design();
    let left = left_placement(&arch, &nl);
    let right = right_placement(&arch, &nl);
    assert!(
        total_hpwl(&arch, &nl, &right) > total_hpwl(&arch, &nl, &left),
        "the routable placement must have the larger estimated wirelength"
    );
    let mut st = RoutingState::new(&arch, &nl);
    let out = route_batch(&mut st, &arch, &nl, &right, &RouterConfig::default(), 10);
    assert!(out.fully_routed, "the spread placement must route");
    rowfpga::route::verify_routing(&st, &arch, &nl, &right).unwrap();
}

#[test]
fn simultaneous_engine_escapes_the_trap() {
    // Started anywhere, the simultaneous flow must find *some* fully
    // routable placement of this design — the placement-level leverage the
    // paper's §2.1 argues for.
    let arch = fabric();
    let nl = design();
    let result = SimultaneousPlaceRoute::new(SimPrConfig::fast())
        .run(&arch, &nl)
        .expect("engine runs");
    assert!(
        result.fully_routed,
        "simultaneous layout failed to find a routable placement"
    );
}

#[test]
fn wirelength_driven_placement_cannot_see_the_segmentation() {
    // A placement-level cost (HPWL) ranks the unroutable placement better —
    // the exact blindness Figure 2 illustrates.
    let arch = fabric();
    let nl = design();
    let left = left_placement(&arch, &nl);
    let right = right_placement(&arch, &nl);
    assert!(total_hpwl(&arch, &nl, &left) < total_hpwl(&arch, &nl, &right));
    let _ = CellId::new(0);
}
